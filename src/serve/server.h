#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "serve/frozen.h"

namespace nors::serve {

// Query lives in serve/frozen.h next to Decision — it is the input type of
// FrozenScheme::route_batch(), which every front-end here drives.

struct ServerOptions {
  /// Worker threads per serve() call; 1 = run on the caller.
  int threads = 1;

  /// Per-thread entries of the (vertex, tree) → table-slot cache (rounded
  /// up to a power of two; 0 disables). The cache memoizes the slab binary
  /// search both for the query source and for every vertex the walk visits,
  /// so hot cluster trees (the top-level trees contain all of V) resolve in
  /// one probe.
  int cache_entries = 0;
};

/// Batched query driver over a FrozenScheme: splits a batch into contiguous
/// chunks, answers each chunk on a worker thread through the software-
/// pipelined FrozenScheme::route_batch() engine (read-only slabs, so
/// workers share the snapshot with no locking), and aggregates counters.
/// Answers are identical to FrozenScheme::route() — and therefore to the
/// live RoutingScheme — regardless of thread count, batching or caching
/// (test_serve pins this).
class RouteServer {
 public:
  explicit RouteServer(const FrozenScheme& fs, ServerOptions opt = {});

  /// Answers queries[i] into out[i]. A query with u == v is answered ok
  /// with 0 hops, like the live route().
  void serve(const Query* queries, std::size_t count, Decision* out) const;

  void serve(const std::vector<Query>& queries,
             std::vector<Decision>& out) const {
    out.resize(queries.size());
    serve(queries.data(), queries.size(), out.data());
  }

  /// Cumulative counters since construction (across all serve() calls).
  struct Stats {
    std::int64_t queries = 0;
    std::int64_t hops = 0;          // == route decisions evaluated
    std::int64_t cache_hits = 0;    // 0 unless cache_entries > 0
    std::int64_t cache_misses = 0;
  };
  Stats stats() const {
    return {queries_.load(), hops_.load(), cache_hits_.load(),
            cache_misses_.load()};
  }

  const FrozenScheme& frozen() const { return *fs_; }
  const ServerOptions& options() const { return opt_; }

 private:
  struct ChunkStats {
    std::int64_t hops = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
  };
  void serve_chunk(const Query* queries, std::size_t count, Decision* out,
                   ChunkStats& cs) const;

  const FrozenScheme* fs_;
  ServerOptions opt_;
  mutable std::atomic<std::int64_t> queries_{0};
  mutable std::atomic<std::int64_t> hops_{0};
  mutable std::atomic<std::int64_t> cache_hits_{0};
  mutable std::atomic<std::int64_t> cache_misses_{0};
};

}  // namespace nors::serve
