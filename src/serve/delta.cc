#include "serve/delta.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/serialize.h"
#include "util/check.h"

namespace nors::serve {

std::shared_ptr<const DeltaSet> DeltaSet::apply(
    const FrozenScheme& fs, const DeltaSet* prev,
    std::span<const EdgeUpdate> batch, DeltaStats* stats) {
  const auto adj_off = fs.adj_off();
  const auto links = fs.link_map();

  // Working override map: predecessor entries + the batch layered on top.
  // The apply path favors clarity (hash map, per-edge port scans); only
  // the finished flat table is consulted on the serving path.
  std::unordered_map<std::int64_t, graph::Dist> work;
  if (prev != nullptr) {
    work.reserve(static_cast<std::size_t>(prev->override_count_));
    for (const Slot& s : prev->slots_) {
      if (s.key != kEmpty) work.emplace(s.key, s.w);
    }
  }

  DeltaStats local;
  DeltaStats& ds = stats != nullptr ? *stats : local;
  ds = DeltaStats{};

  for (const EdgeUpdate& e : batch) {
    NORS_CHECK_MSG(e.u >= 0 && e.u < fs.n() && e.v >= 0 && e.v < fs.n(),
                   "edge update names vertex outside the image");
    const std::int32_t pu = fs.find_port(e.u, e.v);
    const std::int32_t pv = fs.find_port(e.v, e.u);
    if (e.u == e.v || pu == graph::kNoPort || pv == graph::kNoPort) {
      ++ds.unknown_edges;
      continue;
    }
    ++ds.applied;
    const std::int64_t dir[2] = {
        adj_off[static_cast<std::size_t>(e.u)] + pu,
        adj_off[static_cast<std::size_t>(e.v)] + pv,
    };
    for (const std::int64_t idx : dir) {
      if (e.is_fail()) {
        work[idx] = EdgeUpdate::kFail;
      } else if (e.w == links[static_cast<std::size_t>(idx)].w) {
        work.erase(idx);  // restored to frozen: no override needed
      } else {
        work[idx] = e.w;
      }
    }
  }

  auto out = std::shared_ptr<DeltaSet>(new DeltaSet());
  out->seq_ = (prev != nullptr ? prev->seq_ : 0) + 1;
  out->override_count_ = static_cast<std::int64_t>(work.size());

  // Freeze into the open-addressed probe table (≤ 50% load, power of 2).
  std::size_t cap = 16;
  while (cap < work.size() * 2) cap <<= 1;
  out->slots_.assign(cap, Slot{});
  out->probe_mask_ = cap - 1;
  for (const auto& [key, w] : work) {
    std::uint64_t probe = mix(static_cast<std::uint64_t>(key)) &
                          out->probe_mask_;
    while (out->slots_[probe].key != kEmpty) {
      probe = (probe + 1) & out->probe_mask_;
    }
    out->slots_[probe] = Slot{key, w};
    if (w < 0) ++out->failed_count_;
  }

  // Recompute the tree mask from the full failed-link set (not just this
  // batch), so a revived link unmasks the trees it alone had broken. A
  // failed link direction (x, port) breaks exactly the trees whose table
  // slot at x points back across it — parent_port for interior vertices,
  // up_port at subtree roots (every routed port kind is the reverse of one
  // of these at the child endpoint). Both directions of a failed edge are
  // in the set, so the child side is always among the scans.
  const auto table_off = fs.table_off();
  const auto tables = fs.tables();
  const auto table_tree = fs.table_tree();
  out->masked_.assign(
      (static_cast<std::size_t>(std::max<std::int32_t>(fs.num_trees(), 1)) +
       63) / 64,
      0);
  for (const Slot& s : out->slots_) {
    if (s.key == kEmpty || s.w >= 0) continue;
    const auto it =
        std::upper_bound(adj_off.begin(), adj_off.end(), s.key);
    const auto x = static_cast<std::size_t>(it - adj_off.begin()) - 1;
    const auto port = static_cast<std::int32_t>(s.key - adj_off[x]);
    const std::int64_t lo = table_off[x];
    const std::int64_t hi = table_off[x + 1];
    for (std::int64_t i = lo; i < hi; ++i) {
      const FrozenScheme::TableSlot& t = tables[static_cast<std::size_t>(i)];
      if (t.parent_port == port || t.up_port == port) {
        const auto tree =
            static_cast<std::uint32_t>(table_tree[static_cast<std::size_t>(i)]);
        out->masked_[tree >> 6] |= 1ull << (tree & 63);
      }
    }
  }
  for (const std::uint64_t word : out->masked_) {
    out->masked_count_ += __builtin_popcountll(word);
  }

  ds.overrides = out->override_count_;
  ds.failed_links = out->failed_count_;
  ds.masked_trees = out->masked_count_;
  return out;
}

std::vector<std::pair<std::int64_t, graph::Dist>> DeltaSet::sorted_overrides()
    const {
  std::vector<std::pair<std::int64_t, graph::Dist>> out;
  out.reserve(static_cast<std::size_t>(override_count_));
  for (const Slot& s : slots_) {
    if (s.key != kEmpty) out.emplace_back(s.key, s.w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeUpdate> DeltaSet::as_edge_updates(const FrozenScheme& fs) const {
  const auto adj_off = fs.adj_off();
  const auto links = fs.link_map();
  std::vector<EdgeUpdate> out;
  out.reserve(static_cast<std::size_t>(override_count_) / 2 + 1);
  // apply() always patches both directions of an edge together, so keeping
  // only the x < to direction emits each overridden edge exactly once.
  for (const auto& [idx, w] : sorted_overrides()) {
    const auto it = std::upper_bound(adj_off.begin(), adj_off.end(), idx);
    const auto x = static_cast<graph::Vertex>(it - adj_off.begin() - 1);
    const graph::Vertex to = links[static_cast<std::size_t>(idx)].to;
    if (x < to) out.push_back({x, to, w});
  }
  return out;
}

void encode_edge_updates(std::vector<std::uint8_t>& out,
                         std::span<const EdgeUpdate> updates) {
  core::put_uvarint(out, updates.size());
  for (const EdgeUpdate& e : updates) {
    core::put_uvarint(out, e.is_fail() ? 1u : 0u);
    core::put_uvarint(out, core::zigzag(e.u));
    core::put_uvarint(out, core::zigzag(e.v));
    if (!e.is_fail()) core::put_uvarint(out, core::zigzag(e.w));
  }
}

const std::uint8_t* decode_edge_updates(const std::uint8_t* p,
                                        const std::uint8_t* end,
                                        std::vector<EdgeUpdate>& out,
                                        std::uint64_t max_events) {
  auto vertex = [&p, end]() {
    std::uint64_t x = 0;
    p = core::get_uvarint(p, end, x);
    const std::int64_t v = core::unzigzag(x);
    NORS_CHECK_MSG(v >= INT32_MIN && v <= INT32_MAX,
                   "update vertex out of int32 range");
    return static_cast<graph::Vertex>(v);
  };
  std::uint64_t count = 0;
  p = core::get_uvarint(p, end, count);
  NORS_CHECK_MSG(count <= max_events, "update batch count exceeds the cap");
  out.assign(static_cast<std::size_t>(count), EdgeUpdate{});
  for (auto& e : out) {
    std::uint64_t flag = 0;
    p = core::get_uvarint(p, end, flag);
    NORS_CHECK_MSG(flag <= 1, "unknown update flags");
    e.u = vertex();
    e.v = vertex();
    if (flag == 1) {
      e.w = EdgeUpdate::kFail;
    } else {
      std::uint64_t x = 0;
      p = core::get_uvarint(p, end, x);
      e.w = core::unzigzag(x);
      NORS_CHECK_MSG(e.w >= 0, "negative update weight");
    }
  }
  return p;
}

std::vector<std::vector<EdgeUpdate>> parse_update_journal(
    const std::string& text) {
  std::vector<std::vector<EdgeUpdate>> batches;
  std::vector<EdgeUpdate> cur;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error(
        "update journal batch " + std::to_string(batches.size() + 1) +
        ", line " + std::to_string(lineno) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    if (op == "commit") {
      batches.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    EdgeUpdate e;
    if (op == "w") {
      if (!(ls >> e.u >> e.v >> e.w) || e.w < 0) {
        fail("expected 'w U V WEIGHT' with WEIGHT >= 0");
      }
    } else if (op == "f") {
      if (!(ls >> e.u >> e.v)) fail("expected 'f U V'");
      e.w = EdgeUpdate::kFail;
    } else {
      fail("unknown op '" + op + "' (want w/f/commit)");
    }
    std::string rest;
    if (ls >> rest && rest[0] != '#') fail("trailing junk '" + rest + "'");
    cur.push_back(e);
  }
  if (!cur.empty()) batches.push_back(std::move(cur));
  return batches;
}

std::vector<std::vector<EdgeUpdate>> load_update_journal(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open update journal: " + path);
  }
  // Read explicitly and distinguish "the file ended" from "the read
  // failed": rdbuf() slurping folds an EIO mid-file into a silently
  // shorter journal, which is exactly the wrong failure mode for data
  // that feeds the WAL.
  std::string text;
  char chunk[1 << 16];
  do {
    in.read(chunk, sizeof chunk);
    text.append(chunk, static_cast<std::size_t>(in.gcount()));
  } while (in.good());
  if (in.bad() || (in.fail() && !in.eof())) {
    throw std::runtime_error("read error in update journal (not EOF): " +
                             path);
  }
  return parse_update_journal(text);
}

}  // namespace nors::serve
