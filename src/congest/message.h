#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "util/check.h"

namespace nors::congest {

/// A CONGEST message: O(1) machine words. The model allows messages of
/// O(log n) bits; we fix a hard cap of kMaxWords 64-bit words per message and
/// every algorithm in the library must fit its per-edge-per-round traffic in
/// one such message. The simulator enforces the cap.
inline constexpr int kMaxWords = 4;

struct Message {
  // Filled by the sender:
  std::uint16_t tag = 0;                    // algorithm-defined discriminator
  std::uint8_t len = 0;                     // words in use
  std::array<std::int64_t, kMaxWords> w{};  // payload

  // Filled by the simulator on delivery:
  graph::Vertex from = graph::kNoVertex;  // neighbor that sent it
  std::int32_t arrival_port = graph::kNoPort;  // port it arrived on

  static Message make(std::uint16_t tag,
                      std::initializer_list<std::int64_t> words) {
    NORS_CHECK(static_cast<int>(words.size()) <= kMaxWords);
    Message m;
    m.tag = tag;
    m.len = static_cast<std::uint8_t>(words.size());
    int i = 0;
    for (std::int64_t v : words) m.w[static_cast<std::size_t>(i++)] = v;
    return m;
  }
};

/// A vertex's per-round inbox: a read-only window into the engine's flat
/// delivery slab, valid only for the duration of the on_round call.
using MessageView = std::span<const Message>;

}  // namespace nors::congest
