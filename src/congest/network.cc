#include "congest/network.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/radix.h"

namespace nors::congest {

void Sender::send(std::int32_t port, const Message& m) {
  net_.stage_send(ob_, v_, port, m);
}

void Sender::send_all(const Message& m) {
  const int deg = net_.graph().degree(v_);
  for (std::int32_t p = 0; p < deg; ++p) net_.stage_send(ob_, v_, p, m);
}

void Sender::wake_self() { ob_.wakes.push_back(v_); }

Network::Network(const graph::WeightedGraph& g, Options opt)
    : g_(g), opt_(opt) {
  NORS_CHECK(opt_.edge_capacity >= 1);
  NORS_CHECK(opt_.threads >= 1);
  NORS_CHECK_MSG(g.frozen(), "Network requires a frozen graph");
  const auto n = static_cast<std::size_t>(g.n());
  link_offset_.ensure(n + 1);
  link_offset_[0] = 0;
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    link_offset_[static_cast<std::size_t>(v) + 1] =
        link_offset_[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(g.degree(v));
  }
  const std::size_t links = link_offset_[n];
  NORS_CHECK_MSG(links < static_cast<std::size_t>(INT32_MAX),
                 "link ids must fit an int32");
  target_.ensure(links);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    std::size_t l = link_offset_[static_cast<std::size_t>(v)];
    for (const graph::HalfEdge& e : g.neighbors(v)) target_[l++] = {e.to, e.rev};
  }
  link_begin_.assign_fill(links, 0);
  next_begin_.assign_fill(links, 0);
  link_count_.assign_fill(links, 0);
  pend_count_.assign_fill(links, 0);
  awake_.assign_fill(n, 0);
  inbox_end_.assign_fill(n, 0);
  inbox_cnt_.assign_fill(n, 0);
}

void Network::wake(graph::Vertex v) {
  NORS_CHECK(g_.valid_vertex(v));
  const std::lock_guard<std::mutex> lock(wake_mu_);
  if (!awake_[static_cast<std::size_t>(v)]) {
    awake_[static_cast<std::size_t>(v)] = 1;
    wake_list_.push_back(v);
  }
}

void Network::stage_send(internal::Outbox& ob, graph::Vertex from,
                         std::int32_t port, const Message& m) {
  NORS_CHECK_MSG(m.len <= kMaxWords, "message exceeds CONGEST word budget");
  NORS_CHECK_MSG(port >= 0 && port < g_.degree(from),
                 "bad port " << port << " at vertex " << from);
  const std::size_t l = link_index(from, port);
  Message staged = m;
  staged.from = from;
  staged.arrival_port = target_[l].arrival_port;
  ob.link.push_back(static_cast<std::int32_t>(l));
  ob.msg.push_back(staged);
  ++ob.sent;
}

/// Phase 1: pop up to edge_capacity messages off every active link into the
/// inbox slab (grouped by receiver, link-ascending within a receiver, FIFO
/// within a link) and schedule the receivers.
void Network::deliver_round(std::vector<graph::Vertex>& to_run) {
  receivers_.clear();
  const auto cap = static_cast<std::int32_t>(opt_.edge_capacity);
  std::size_t total = 0;
  for (const std::int32_t li : active_links_) {
    const auto l = static_cast<std::size_t>(li);
    const std::int32_t d = std::min(cap, link_count_[l]);
    const auto dst = static_cast<std::size_t>(target_[l].dst);
    if (inbox_cnt_[dst] == 0) receivers_.push_back(target_[l].dst);
    inbox_cnt_[dst] += d;
    total += static_cast<std::size_t>(d);
  }
  inbox_.ensure(total);
  std::size_t off = 0;
  for (const graph::Vertex v : receivers_) {
    // inbox_end_ doubles as the scatter cursor below; after the scatter it
    // is exactly one past v's window.
    inbox_end_[static_cast<std::size_t>(v)] = off;
    off += static_cast<std::size_t>(inbox_cnt_[static_cast<std::size_t>(v)]);
  }

  std::size_t leftover = 0;  // compact active_links_ in place (stays sorted)
  for (const std::int32_t li : active_links_) {
    const auto l = static_cast<std::size_t>(li);
    const std::int32_t d = std::min(cap, link_count_[l]);
    const auto dst = static_cast<std::size_t>(target_[l].dst);
    std::size_t w = inbox_end_[dst];
    const std::size_t b = link_begin_[l];
    for (std::int32_t i = 0; i < d; ++i) {
      inbox_[w++] = cur_[b + static_cast<std::size_t>(i)];
    }
    inbox_end_[dst] = w;
    link_begin_[l] = b + static_cast<std::size_t>(d);
    link_count_[l] -= d;
    queued_ -= d;
    stats_.messages_delivered += d;
    if (link_count_[l] > 0) active_links_[leftover++] = li;
    if (!awake_[dst]) {
      awake_[dst] = 1;
      to_run.push_back(target_[l].dst);
    }
  }
  active_links_.resize(leftover);
}

/// Phase 3: merge undelivered leftovers and the round's outboxes into the
/// other slab of the double buffer, regrouping by link.
void Network::merge_outboxes(int nthreads, std::vector<graph::Vertex>& to_run) {
  new_links_.clear();
  for (int t = 0; t < nthreads; ++t) {
    internal::Outbox& ob = outboxes_[static_cast<std::size_t>(t)];
    for (const std::int32_t li : ob.link) {
      const auto l = static_cast<std::size_t>(li);
      if (pend_count_[l]++ == 0 && link_count_[l] == 0) {
        new_links_.push_back(li);
      }
    }
    stats_.messages_sent += ob.sent;
    queued_ += ob.sent;
  }
  // Delivery iterates active links in ascending link order; keep that order
  // canonical so runs are deterministic regardless of outbox interleaving.
  // The surviving actives are already ascending (delivery compacts them in
  // place), so only this round's newly activated links need ordering: they
  // arrive grouped by sending vertex in execution order — ascending across
  // vertices and, for every program that emits ports in order, ascending
  // within one — so the is_sorted fast path usually wins; announcement
  // bursts that don't fall back to a radix pass. One linear merge then
  // replaces the historical full-list std::sort.
  if (!new_links_.empty()) {
    if (!std::is_sorted(new_links_.begin(), new_links_.end())) {
      util::radix_sort(new_links_, sort_scratch_,
                       static_cast<std::int32_t>(link_count_.size() - 1));
    }
    merged_links_.resize(active_links_.size() + new_links_.size());
    std::merge(active_links_.begin(), active_links_.end(), new_links_.begin(),
               new_links_.end(), merged_links_.begin());
    active_links_.swap(merged_links_);
  }

  next_.ensure(static_cast<std::size_t>(queued_));
  std::size_t off = 0;
  for (const std::int32_t li : active_links_) {
    const auto l = static_cast<std::size_t>(li);
    next_begin_[l] = off;
    off += static_cast<std::size_t>(link_count_[l]) +
           static_cast<std::size_t>(pend_count_[l]);
  }
  // Leftovers first (they are older than anything staged this round), then
  // outboxes in thread order — which is vertex order, because threads own
  // contiguous chunks of the sorted run list. A directed link has a unique
  // sending vertex, so per-link FIFO order is independent of the chunking.
  for (const std::int32_t li : active_links_) {
    const auto l = static_cast<std::size_t>(li);
    const std::size_t b = link_begin_[l];
    std::size_t w = next_begin_[l];
    for (std::int32_t i = 0; i < link_count_[l]; ++i) {
      next_[w++] = cur_[b + static_cast<std::size_t>(i)];
    }
    next_begin_[l] = w;  // becomes the staged-send write cursor
  }
  for (int t = 0; t < nthreads; ++t) {
    internal::Outbox& ob = outboxes_[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < ob.link.size(); ++i) {
      next_[next_begin_[static_cast<std::size_t>(ob.link[i])]++] = ob.msg[i];
    }
    for (const graph::Vertex w : ob.wakes) {
      if (!awake_[static_cast<std::size_t>(w)]) {
        awake_[static_cast<std::size_t>(w)] = 1;
        to_run.push_back(w);
      }
    }
    ob.clear();
  }
  for (const std::int32_t li : active_links_) {
    const auto l = static_cast<std::size_t>(li);
    const std::int32_t total = link_count_[l] + pend_count_[l];
    link_count_[l] = total;
    pend_count_[l] = 0;
    link_begin_[l] = next_begin_[l] - static_cast<std::size_t>(total);
    stats_.max_link_backlog =
        std::max(stats_.max_link_backlog, static_cast<std::int64_t>(total));
  }
  cur_.swap(next_);
}

NetworkStats Network::run(NodeProgram& prog) {
  stats_ = NetworkStats{};
  queued_ = 0;
  cur_.clear();
  next_.clear();
  std::fill(link_count_.data(), link_count_.data() + link_count_.size(), 0);
  std::fill(pend_count_.data(), pend_count_.data() + pend_count_.size(), 0);
  std::fill(inbox_cnt_.data(), inbox_cnt_.data() + inbox_cnt_.size(), 0);
  active_links_.clear();
  std::fill(awake_.data(), awake_.data() + awake_.size(), 0);
  wake_list_.clear();

  const int nthreads = opt_.threads;
  outboxes_.resize(static_cast<std::size_t>(nthreads));
  for (internal::Outbox& ob : outboxes_) ob.clear();

  prog.begin(*this);

  // Invariant: awake_[v] == 1  ⟺  v is in to_run (scheduled for the next
  // round). wake() maintains it; flags are cleared when a vertex starts
  // executing.
  std::vector<graph::Vertex> to_run = std::move(wake_list_);
  wake_list_.clear();
  std::vector<graph::Vertex> running;

  while (queued_ > 0 || !to_run.empty()) {
    NORS_CHECK_MSG(stats_.rounds < opt_.max_rounds,
                   "CONGEST simulation exceeded max_rounds");
    ++stats_.rounds;

    deliver_round(to_run);

    // Phase 2: run every scheduled vertex (deterministic order; radix keeps
    // this linear in the schedule size instead of O(A log A) per round).
    util::radix_sort(to_run, sort_scratch_, g_.n() - 1);
    running = std::move(to_run);
    to_run.clear();
    for (const graph::Vertex v : running) {
      awake_[static_cast<std::size_t>(v)] = 0;
    }

    auto run_range = [&](std::size_t lo, std::size_t hi, internal::Outbox& ob) {
      for (std::size_t i = lo; i < hi; ++i) {
        const graph::Vertex v = running[i];
        const auto vi = static_cast<std::size_t>(v);
        const auto cnt = static_cast<std::size_t>(inbox_cnt_[vi]);
        // Woken-without-traffic vertices have cnt == 0 and a stale window
        // offset; give them an explicitly empty view.
        const MessageView inbox =
            cnt == 0 ? MessageView{}
                     : MessageView{inbox_.data() + (inbox_end_[vi] - cnt), cnt};
        Sender out(*this, v, ob);
        prog.on_round(v, inbox, out);
      }
    };

    if (nthreads == 1 || running.size() < 2) {
      run_range(0, running.size(), outboxes_[0]);
    } else {
      const std::size_t chunk =
          (running.size() + static_cast<std::size_t>(nthreads) - 1) /
          static_cast<std::size_t>(nthreads);
      std::vector<std::thread> workers;
      std::vector<std::exception_ptr> errors(
          static_cast<std::size_t>(nthreads));
      for (int t = 0; t < nthreads; ++t) {
        const std::size_t lo =
            std::min(running.size(), chunk * static_cast<std::size_t>(t));
        const std::size_t hi = std::min(running.size(), lo + chunk);
        workers.emplace_back([&, t, lo, hi] {
          try {
            run_range(lo, hi, outboxes_[static_cast<std::size_t>(t)]);
          } catch (...) {
            errors[static_cast<std::size_t>(t)] = std::current_exception();
          }
        });
      }
      for (std::thread& w : workers) w.join();
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }
    for (const graph::Vertex v : receivers_) {
      inbox_cnt_[static_cast<std::size_t>(v)] = 0;
    }

    merge_outboxes(nthreads, to_run);

    // Wakes requested through Network::wake during this round run next
    // round; their awake_ flags are already set by wake().
    {
      const std::lock_guard<std::mutex> lock(wake_mu_);
      to_run.insert(to_run.end(), wake_list_.begin(), wake_list_.end());
      wake_list_.clear();
    }
  }
  return stats_;
}

}  // namespace nors::congest
