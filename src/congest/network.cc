#include "congest/network.h"

#include <algorithm>

namespace nors::congest {

void Sender::send(std::int32_t port, const Message& m) {
  net_.enqueue(v_, port, m);
}

void Sender::send_all(const Message& m) {
  const int deg = net_.graph().degree(v_);
  for (std::int32_t p = 0; p < deg; ++p) net_.enqueue(v_, p, m);
}

void Sender::wake_self() { net_.wake(v_); }

Network::Network(const graph::WeightedGraph& g, Options opt)
    : g_(g), opt_(opt) {
  NORS_CHECK(opt_.edge_capacity >= 1);
  offsets_.resize(static_cast<std::size_t>(g.n()) + 1, 0);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(g.degree(v));
  }
  links_.resize(offsets_.back());
  awake_.assign(static_cast<std::size_t>(g.n()), 0);
}

void Network::wake(graph::Vertex v) {
  NORS_CHECK(g_.valid_vertex(v));
  if (!awake_[static_cast<std::size_t>(v)]) {
    awake_[static_cast<std::size_t>(v)] = 1;
    wake_list_.push_back(v);
  }
}

void Network::enqueue(graph::Vertex from, std::int32_t port, Message m) {
  NORS_CHECK_MSG(m.len <= kMaxWords, "message exceeds CONGEST word budget");
  m.from = from;
  const auto& e = g_.edge(from, port);
  m.arrival_port = e.rev;
  auto& q = links_[link_index(from, port)];
  q.push_back(m);
  ++queued_;
  ++stats_.messages_sent;
  stats_.max_link_backlog =
      std::max(stats_.max_link_backlog, static_cast<std::int64_t>(q.size()));
}

NetworkStats Network::run(NodeProgram& prog) {
  stats_ = NetworkStats{};
  queued_ = 0;
  for (auto& q : links_) q.clear();
  std::fill(awake_.begin(), awake_.end(), 0);
  wake_list_.clear();

  prog.begin(*this);

  // Invariant: awake_[v] == 1  ⟺  v is in to_run (scheduled for the next
  // round). wake() maintains it; flags are cleared when a vertex starts
  // executing.
  std::vector<std::vector<Message>> inbox(static_cast<std::size_t>(g_.n()));
  std::vector<graph::Vertex> to_run = std::move(wake_list_);
  wake_list_.clear();

  while (queued_ > 0 || !to_run.empty()) {
    NORS_CHECK_MSG(stats_.rounds < opt_.max_rounds,
                   "CONGEST simulation exceeded max_rounds");
    ++stats_.rounds;

    // Phase 1: deliver up to edge_capacity messages per directed link, and
    // schedule the receivers.
    for (graph::Vertex v = 0; v < g_.n(); ++v) {
      for (std::int32_t p = 0; p < g_.degree(v); ++p) {
        auto& q = links_[link_index(v, p)];
        const graph::Vertex dst = g_.edge(v, p).to;
        for (int c = 0; c < opt_.edge_capacity && !q.empty(); ++c) {
          inbox[static_cast<std::size_t>(dst)].push_back(q.front());
          q.pop_front();
          --queued_;
          ++stats_.messages_delivered;
          if (!awake_[static_cast<std::size_t>(dst)]) {
            awake_[static_cast<std::size_t>(dst)] = 1;
            to_run.push_back(dst);
          }
        }
      }
    }

    // Phase 2: run every scheduled vertex (deterministic order).
    std::sort(to_run.begin(), to_run.end());
    std::vector<graph::Vertex> running = std::move(to_run);
    to_run.clear();
    for (graph::Vertex v : running) awake_[static_cast<std::size_t>(v)] = 0;

    for (graph::Vertex v : running) {
      Sender out(*this, v);
      prog.on_round(v, inbox[static_cast<std::size_t>(v)], out);
      inbox[static_cast<std::size_t>(v)].clear();
    }

    // Wakes requested during this round (via wake_self) run next round;
    // their awake_ flags are already set by wake().
    to_run = std::move(wake_list_);
    wake_list_.clear();
  }
  return stats_;
}

}  // namespace nors::congest
