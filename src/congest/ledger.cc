#include "congest/ledger.h"

#include <sstream>

#include "util/check.h"

namespace nors::congest {

void RoundLedger::add(std::string phase, CostKind kind, std::int64_t rounds,
                      std::int64_t messages, std::string note) {
  NORS_CHECK(rounds >= 0);
  entries_.push_back(
      {std::move(phase), kind, rounds, messages, std::move(note)});
}

void RoundLedger::merge(const RoundLedger& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::int64_t RoundLedger::total_rounds() const {
  std::int64_t t = 0;
  for (const auto& e : entries_) t += e.rounds;
  return t;
}

std::int64_t RoundLedger::simulated_rounds() const {
  std::int64_t t = 0;
  for (const auto& e : entries_) {
    if (e.kind == CostKind::kSimulated) t += e.rounds;
  }
  return t;
}

std::int64_t RoundLedger::accounted_rounds() const {
  std::int64_t t = 0;
  for (const auto& e : entries_) {
    if (e.kind == CostKind::kAccounted) t += e.rounds;
  }
  return t;
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << "  " << (e.kind == CostKind::kSimulated ? "[sim]" : "[acc]") << " "
       << e.phase << ": " << e.rounds << " rounds";
    if (e.messages > 0) os << ", " << e.messages << " msgs";
    if (!e.note.empty()) os << " (" << e.note << ")";
    os << "\n";
  }
  os << "  total: " << total_rounds() << " rounds (" << simulated_rounds()
     << " simulated + " << accounted_rounds() << " accounted)\n";
  return os.str();
}

}  // namespace nors::congest
