#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"

namespace nors::congest {

/// Per-run statistics of a simulated execution.
struct NetworkStats {
  std::int64_t rounds = 0;
  std::int64_t messages_sent = 0;
  std::int64_t messages_delivered = 0;
  std::int64_t max_link_backlog = 0;  // worst per-link queue length observed
};

class Network;

/// Send-side interface handed to a node while it executes one round. All
/// sends are enqueued on the link and delivered subject to the per-round
/// per-edge capacity (1 message per direction per round in the standard
/// CONGEST model).
class Sender {
 public:
  Sender(Network& net, graph::Vertex v) : net_(net), v_(v) {}

  /// Send over `port` of the executing vertex.
  void send(std::int32_t port, const Message& m);
  /// Send the same message over every port of the executing vertex.
  void send_all(const Message& m);
  /// Ask the engine to run this vertex again next round even without inbox
  /// traffic (used by sources that emit over several rounds).
  void wake_self();

 private:
  Network& net_;
  graph::Vertex v_;
};

/// A distributed algorithm: per-vertex handler invoked once per round with
/// the messages delivered this round. State lives inside the NodeProgram
/// implementation (indexed by vertex), mirroring "local memory" in the model.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 0; use to initialize and wake source vertices
  /// (via Network::wake).
  virtual void begin(Network& net) = 0;

  /// One round at vertex v. `inbox` holds the messages delivered to v this
  /// round (at most one per incident edge, by the capacity constraint).
  virtual void on_round(graph::Vertex v, const std::vector<Message>& inbox,
                        Sender& out) = 0;
};

/// Synchronous CONGEST simulator. Each round:
///   1. every link delivers up to `edge_capacity` queued messages,
///   2. every vertex with deliveries (or an explicit wake) runs on_round,
///   3. newly sent messages join the link queues for later rounds.
/// Execution stops when no messages are queued and no vertex is awake.
class Network {
 public:
  struct Options {
    int edge_capacity = 1;          // messages per directed edge per round
    std::int64_t max_rounds = 50'000'000;
  };

  Network(const graph::WeightedGraph& g, Options opt);

  const graph::WeightedGraph& graph() const { return g_; }

  /// Wake a vertex for the next round (callable from begin()).
  void wake(graph::Vertex v);

  /// Run `prog` to quiescence; returns the statistics of this run.
  NetworkStats run(NodeProgram& prog);

 private:
  friend class Sender;

  std::size_t link_index(graph::Vertex v, std::int32_t port) const {
    return offsets_[static_cast<std::size_t>(v)] +
           static_cast<std::size_t>(port);
  }
  void enqueue(graph::Vertex from, std::int32_t port, Message m);

  const graph::WeightedGraph& g_;
  Options opt_;
  std::vector<std::size_t> offsets_;        // per-vertex start into links_
  std::vector<std::deque<Message>> links_;  // per directed edge FIFO
  std::vector<char> awake_;
  std::vector<graph::Vertex> wake_list_;
  NetworkStats stats_;
  std::int64_t queued_ = 0;
};

}  // namespace nors::congest
