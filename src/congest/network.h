#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"
#include "util/arena.h"

namespace nors::congest {

/// Per-run statistics of a simulated execution.
struct NetworkStats {
  std::int64_t rounds = 0;
  std::int64_t messages_sent = 0;
  std::int64_t messages_delivered = 0;
  std::int64_t max_link_backlog = 0;  // worst per-link queue length observed
};

class Network;

namespace internal {

/// Per-thread staging buffer for one round's sends and wakes; merged into
/// the shared queue arena at the round barrier.
struct Outbox {
  std::vector<std::int32_t> link;  // destination link per staged message
  std::vector<Message> msg;
  std::vector<graph::Vertex> wakes;
  std::int64_t sent = 0;

  void clear() {
    link.clear();
    msg.clear();
    wakes.clear();
    sent = 0;
  }
};

}  // namespace internal

/// Send-side interface handed to a node while it executes one round. All
/// sends are staged in the round's outbox slab and delivered subject to the
/// per-round per-edge capacity (1 message per direction per round in the
/// standard CONGEST model).
class Sender {
 public:
  /// Send over `port` of the executing vertex.
  void send(std::int32_t port, const Message& m);
  /// Send the same message over every port of the executing vertex.
  void send_all(const Message& m);
  /// Ask the engine to run this vertex again next round even without inbox
  /// traffic (used by sources that emit over several rounds).
  void wake_self();

 private:
  friend class Network;
  Sender(Network& net, graph::Vertex v, internal::Outbox& ob)
      : net_(net), v_(v), ob_(ob) {}

  Network& net_;
  graph::Vertex v_;
  internal::Outbox& ob_;
};

/// A distributed algorithm: per-vertex handler invoked once per round with
/// the messages delivered this round. State lives inside the NodeProgram
/// implementation (indexed by vertex), mirroring "local memory" in the model.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 0; use to initialize and wake source vertices
  /// (via Network::wake).
  virtual void begin(Network& net) = 0;

  /// One round at vertex v. `inbox` holds the messages delivered to v this
  /// round (at most edge_capacity per incident edge, by the capacity
  /// constraint). When Options::threads > 1 this runs concurrently across
  /// vertices, so the handler must only touch state owned by v.
  virtual void on_round(graph::Vertex v, MessageView inbox, Sender& out) = 0;
};

/// Synchronous CONGEST simulator over flat memory. Messages in flight live
/// in one contiguous slab grouped by directed link; each round:
///   1. every queued link delivers up to `edge_capacity` messages into a
///      per-round inbox slab, and the receivers are scheduled,
///   2. every scheduled vertex runs on_round (in vertex order, optionally
///      chunked across a thread pool with per-thread outboxes),
///   3. undelivered leftovers and the round's outboxes are merged into the
///      next queue slab (double buffer) at the round barrier. The active
///      link list stays sorted by construction: delivery compacts the
///      (already ascending) survivors in place and the round's newly
///      activated links are sorted alone — is_sorted fast path for the
///      common ascending staging order, radix for large batches — then
///      merged with the survivors. No O(A log A) re-sort of the full list.
/// Execution stops when no messages are queued and no vertex is awake.
///
/// Per-round work is proportional to the number of active links and
/// scheduled vertices — never to n or m — and steady-state execution
/// performs no allocation once slab capacities have peaked. Message slabs
/// and link tables draw from the arena pool (util/arena.h), so consecutive
/// simulations recycle one another's high-water slabs instead of growing
/// the heap (DESIGN.md §9).
class Network {
 public:
  struct Options {
    int edge_capacity = 1;          // messages per directed edge per round
    std::int64_t max_rounds = 50'000'000;
    int threads = 1;                // opt-in parallel on_round execution
  };

  /// The graph must be frozen: link ids index its CSR adjacency directly.
  Network(const graph::WeightedGraph& g, Options opt);

  const graph::WeightedGraph& graph() const { return g_; }

  /// Wake a vertex for the next round. Callable from begin() and — under an
  /// internal lock, so it is safe in threaded runs — from on_round.
  void wake(graph::Vertex v);

  /// Run `prog` to quiescence; returns the statistics of this run.
  NetworkStats run(NodeProgram& prog);

 private:
  friend class Sender;

  /// Where a directed link points: resolved once at construction so the
  /// per-round hot loops never consult the graph.
  struct LinkTarget {
    graph::Vertex dst = graph::kNoVertex;
    std::int32_t arrival_port = graph::kNoPort;
  };

  std::size_t link_index(graph::Vertex v, std::int32_t port) const {
    return link_offset_[static_cast<std::size_t>(v)] +
           static_cast<std::size_t>(port);
  }
  void stage_send(internal::Outbox& ob, graph::Vertex from, std::int32_t port,
                  const Message& m);
  void deliver_round(std::vector<graph::Vertex>& to_run);
  void merge_outboxes(int nthreads, std::vector<graph::Vertex>& to_run);

  const graph::WeightedGraph& g_;
  Options opt_;

  // Static link topology (CSR-aligned: link = link_offset_[v] + port).
  util::PooledBuf<std::size_t> link_offset_;  // n+1
  util::PooledBuf<LinkTarget> target_;        // one per directed link

  // In-flight queue arena, double buffered. cur_ holds all queued messages
  // grouped by link: link l owns cur_[link_begin_[l] .. +link_count_[l]).
  // Only links listed in active_links_ have nonzero counts; the list is
  // kept ascending across rounds (see the class comment).
  util::PooledBuf<Message> cur_, next_;
  util::PooledBuf<std::size_t> link_begin_;
  util::PooledBuf<std::size_t> next_begin_;
  util::PooledBuf<std::int32_t> link_count_;
  util::PooledBuf<std::int32_t> pend_count_;  // this round's staged sends
  std::vector<std::int32_t> active_links_;    // ascending
  std::vector<std::int32_t> new_links_;       // links activated this round
  std::vector<std::int32_t> merged_links_;    // merge double buffer
  std::vector<std::int32_t> sort_scratch_;

  // Per-round inbox slab, grouped by receiver.
  util::PooledBuf<Message> inbox_;
  util::PooledBuf<std::size_t> inbox_end_;   // per vertex: one past window
  util::PooledBuf<std::int32_t> inbox_cnt_;  // per vertex: window length
  std::vector<graph::Vertex> receivers_;

  util::PooledBuf<char> awake_;
  std::vector<graph::Vertex> wake_list_;
  std::mutex wake_mu_;
  std::vector<internal::Outbox> outboxes_;  // one per worker thread
  NetworkStats stats_;
  std::int64_t queued_ = 0;
};

}  // namespace nors::congest
