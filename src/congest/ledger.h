#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nors::congest {

/// How a phase's round count was obtained. `Simulated` phases ran message by
/// message on the Network; `Accounted` phases executed logically and were
/// charged by the documented cost formula of the primitive they model (see
/// DESIGN.md §2–3), evaluated on *measured* message counts.
enum class CostKind { kSimulated, kAccounted };

struct CostEntry {
  std::string phase;
  CostKind kind = CostKind::kSimulated;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::string note;
};

/// Accumulates the per-phase round cost of a distributed construction.
class RoundLedger {
 public:
  void add(std::string phase, CostKind kind, std::int64_t rounds,
           std::int64_t messages = 0, std::string note = "");
  void merge(const RoundLedger& other);

  std::int64_t total_rounds() const;
  std::int64_t simulated_rounds() const;
  std::int64_t accounted_rounds() const;
  const std::vector<CostEntry>& entries() const { return entries_; }

  /// Multi-line human-readable breakdown.
  std::string report() const;

 private:
  std::vector<CostEntry> entries_;
};

}  // namespace nors::congest
