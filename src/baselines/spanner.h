#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace nors::baselines {

/// An undirected spanner edge (endpoints in the host graph, weight copied).
struct SpannerEdge {
  graph::Vertex u = graph::kNoVertex;
  graph::Vertex v = graph::kNoVertex;
  graph::Weight w = 0;
};

/// Baswana–Sen randomized (2k-1)-spanner with expected O(k · n^{1+1/k})
/// edges. Used by the LP13a-style baseline (spanner over the skeleton) and
/// as a standalone substrate.
std::vector<SpannerEdge> baswana_sen_spanner(const graph::WeightedGraph& g,
                                             int k, util::Rng& rng);

/// Builds a WeightedGraph from spanner edges over the same vertex set.
graph::WeightedGraph spanner_graph(int n,
                                   const std::vector<SpannerEdge>& edges);

}  // namespace nors::baselines
