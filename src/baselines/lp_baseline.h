#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baselines/spanner.h"
#include "congest/ledger.h"
#include "graph/graph.h"
#include "treeroute/tz_tree.h"

namespace nors::baselines {

/// LP13a-style routing baseline (paper Table 1, [LP13a] row): a skeleton of
/// ≈ √n·ln n sampled vertices, a Baswana–Sen spanner over the skeleton's
/// virtual graph that is broadcast to *every* vertex (hence tables of
/// Ω(√n) words — the weakness the paper's scheme removes), Voronoi trees
/// for the first/last mile. Stretch is O(k); round cost is charged
/// Õ(n^{1/2+1/k} + D) on the ledger.
class LpBaselineScheme {
 public:
  struct Params {
    int k = 3;
    std::uint64_t seed = 1;
    double skeleton_factor = 1.0;  // scales the √n·ln n sample size
  };

  struct RouteResult {
    bool ok = false;
    graph::Dist length = 0;
    int hops = 0;
  };

  /// Keeps a reference to `g`; the graph must outlive the scheme and keep
  /// a stable address.
  static LpBaselineScheme build(const graph::WeightedGraph& g,
                                const Params& params, int bfs_height);

  RouteResult route(graph::Vertex u, graph::Vertex v) const;

  std::int64_t table_words(graph::Vertex v) const;
  std::int64_t label_words(graph::Vertex v) const;
  const congest::RoundLedger& ledger() const { return ledger_; }
  std::int64_t skeleton_size() const {
    return static_cast<std::int64_t>(skeleton_.size());
  }
  std::int64_t spanner_edges() const {
    return static_cast<std::int64_t>(spanner_.size());
  }

 private:
  struct SkeletonEdge {
    graph::Vertex r1, r2;  // skeleton endpoints
    graph::Dist w;         // virtual weight d(r1,x)+w(x,y)+d(y,r2)
    graph::Vertex x, y;    // realizing graph edge
    treeroute::TzTreeScheme::Label x_label;  // ℓ(x) in Vor(r1)
    std::int32_t xy_port;                    // port at x toward y
  };

  const graph::WeightedGraph* g_ = nullptr;
  Params params_;
  congest::RoundLedger ledger_;
  std::vector<graph::Vertex> skeleton_;
  std::vector<graph::Vertex> vor_root_;   // nearest skeleton vertex
  std::vector<graph::Dist> vor_dist_;
  std::vector<SpannerEdge> spanner_;      // virtual (skeleton) spanner
  // Voronoi tree scheme per skeleton root.
  std::unordered_map<graph::Vertex, treeroute::TzTreeScheme> vor_trees_;
  // Spanner edges with realization info, indexed for the router; key is
  // (min(r1,r2), max(r1,r2)).
  std::vector<SkeletonEdge> skeleton_edges_;
  std::unordered_map<std::int64_t, std::vector<int>> skeleton_adj_;

  std::vector<graph::Vertex> spanner_path(graph::Vertex r_from,
                                          graph::Vertex r_to) const;
};

}  // namespace nors::baselines
