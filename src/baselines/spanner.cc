#include "baselines/spanner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace nors::baselines {

namespace {

using graph::Vertex;
using graph::Weight;

}  // namespace

std::vector<SpannerEdge> baswana_sen_spanner(const graph::WeightedGraph& g,
                                             int k, util::Rng& rng) {
  NORS_CHECK(k >= 1);
  const int n = g.n();
  const double p = std::pow(static_cast<double>(std::max(2, n)), -1.0 / k);

  std::vector<SpannerEdge> spanner;
  // cluster[v]: center of v's cluster at the current level, or kNoVertex if
  // v has been discarded (left the clustering).
  std::vector<Vertex> cluster(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) cluster[static_cast<std::size_t>(v)] = v;
  // Surviving edges between differently-clustered vertices.
  struct E {
    Vertex u, v;
    Weight w;
  };
  std::vector<E> edges;
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& e : g.neighbors(v)) {
      if (v < e.to) edges.push_back({v, e.to, e.w});
    }
  }

  auto add = [&](Vertex a, Vertex b, Weight w) {
    spanner.push_back({a, b, w});
  };

  std::vector<char> active(static_cast<std::size_t>(n), 1);  // still clustered
  for (int phase = 0; phase < k - 1; ++phase) {
    // 1. Sample surviving cluster centers.
    std::unordered_map<Vertex, char> sampled;
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[static_cast<std::size_t>(v)] == v &&
          active[static_cast<std::size_t>(v)]) {
        if (rng.bernoulli(p)) sampled[v] = 1;
      }
    }
    // 2. Per vertex: lightest edge to each neighboring cluster.
    std::vector<std::map<Vertex, std::pair<Weight, std::pair<Vertex, Vertex>>>>
        lightest(static_cast<std::size_t>(n));
    for (const auto& e : edges) {
      for (auto [a, b] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
        const Vertex cb = cluster[static_cast<std::size_t>(b)];
        if (cb == graph::kNoVertex) continue;
        auto& m = lightest[static_cast<std::size_t>(a)];
        auto it = m.find(cb);
        if (it == m.end() || e.w < it->second.first) {
          m[cb] = {e.w, {a, b}};
        }
      }
    }
    std::vector<Vertex> next_cluster = cluster;
    for (Vertex v = 0; v < n; ++v) {
      if (!active[static_cast<std::size_t>(v)]) continue;
      const Vertex cv = cluster[static_cast<std::size_t>(v)];
      if (sampled.count(cv)) continue;  // cluster survives; v stays put
      // v's cluster was not sampled: v re-clusters.
      const auto& m = lightest[static_cast<std::size_t>(v)];
      // Nearest sampled neighboring cluster, if any.
      Weight best_w = 0;
      Vertex best_c = graph::kNoVertex;
      std::pair<Vertex, Vertex> best_e{graph::kNoVertex, graph::kNoVertex};
      for (const auto& [c, we] : m) {
        if (!sampled.count(c)) continue;
        if (best_c == graph::kNoVertex || we.first < best_w) {
          best_w = we.first;
          best_c = c;
          best_e = we.second;
        }
      }
      if (best_c != graph::kNoVertex) {
        // Join the nearest sampled cluster; keep lighter edges to other
        // clusters seen before it.
        add(best_e.first, best_e.second, best_w);
        next_cluster[static_cast<std::size_t>(v)] = best_c;
        for (const auto& [c, we] : m) {
          if (c != best_c && we.first < best_w) {
            add(we.second.first, we.second.second, we.first);
          }
        }
      } else {
        // No sampled neighbor: add lightest edge to every neighboring
        // cluster and leave the clustering.
        for (const auto& [c, we] : m) {
          add(we.second.first, we.second.second, we.first);
        }
        next_cluster[static_cast<std::size_t>(v)] = graph::kNoVertex;
        active[static_cast<std::size_t>(v)] = 0;
      }
    }
    cluster = std::move(next_cluster);
    // Drop intra-cluster and discarded-endpoint edges.
    std::vector<E> surviving;
    for (const auto& e : edges) {
      const Vertex cu = cluster[static_cast<std::size_t>(e.u)];
      const Vertex cv = cluster[static_cast<std::size_t>(e.v)];
      if (cu == graph::kNoVertex || cv == graph::kNoVertex) continue;
      if (cu != cv) surviving.push_back(e);
    }
    edges = std::move(surviving);
  }

  // Final phase: every vertex adds its lightest edge to each neighboring
  // surviving cluster.
  std::vector<std::map<Vertex, std::pair<Weight, std::pair<Vertex, Vertex>>>>
      lightest(static_cast<std::size_t>(n));
  for (const auto& e : edges) {
    for (auto [a, b] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
      const Vertex cb = cluster[static_cast<std::size_t>(b)];
      if (cb == graph::kNoVertex) continue;
      auto& m = lightest[static_cast<std::size_t>(a)];
      auto it = m.find(cb);
      if (it == m.end() || e.w < it->second.first) m[cb] = {e.w, {a, b}};
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& [c, we] : lightest[static_cast<std::size_t>(v)]) {
      add(we.second.first, we.second.second, we.first);
    }
  }

  // Deduplicate.
  std::map<std::pair<Vertex, Vertex>, Weight> dedup;
  for (const auto& e : spanner) {
    const auto key = e.u < e.v ? std::make_pair(e.u, e.v)
                               : std::make_pair(e.v, e.u);
    auto [it, fresh] = dedup.insert({key, e.w});
    if (!fresh) it->second = std::min(it->second, e.w);
  }
  std::vector<SpannerEdge> out;
  out.reserve(dedup.size());
  for (const auto& [key, w] : dedup) out.push_back({key.first, key.second, w});
  return out;
}

graph::WeightedGraph spanner_graph(int n,
                                   const std::vector<SpannerEdge>& edges) {
  graph::WeightedGraph g(n);
  for (const auto& e : edges) g.add_edge(e.u, e.v, e.w);
  g.freeze();
  return g;
}

}  // namespace nors::baselines
