#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "congest/ledger.h"
#include "graph/graph.h"

namespace nors::baselines {

/// The [SDP15]-style distributed distance-sketch construction the paper's
/// Theorem 6 improves on (§1): exact Thorup–Zwick bunches computed by
/// running the cluster explorations directly on the CONGEST simulator at
/// *every* level. Sketches are O(k n^{1/k} log n) with exact 2k-1 stretch —
/// but the exploration depth is the shortest-path hop diameter S, so the
/// measured round count grows like Õ(S·n^{1/k}) and can reach Ω(n) even
/// when the hop diameter D is tiny (the gap our paper's scheme closes;
/// compare rows in bench_distance_estimation).
class Sdp15Sketches {
 public:
  struct Params {
    int k = 3;
    std::uint64_t seed = 1;
    int edge_capacity = 1;
  };

  /// Runs every phase message-by-message on the simulator; the ledger is
  /// all simulated rounds. Keeps no reference to g.
  static Sdp15Sketches build(const graph::WeightedGraph& g,
                             const Params& params);

  struct QueryResult {
    graph::Dist estimate = graph::kDistInf;
    int iterations = 0;
  };
  /// TZ05 query over the distributedly-computed bunches (stretch ≤ 2k-1).
  QueryResult query(graph::Vertex u, graph::Vertex v) const;

  std::int64_t sketch_words(graph::Vertex v) const;
  const congest::RoundLedger& ledger() const { return ledger_; }
  int k() const { return k_; }

 private:
  int k_ = 0;
  std::size_t n_ = 0;
  congest::RoundLedger ledger_;
  std::vector<graph::Vertex> pivot_;      // [i*n+v]
  std::vector<graph::Dist> pivot_dist_;   // [i*n+v], row k = inf
  std::vector<std::unordered_map<graph::Vertex, graph::Dist>> bunch_;
};

}  // namespace nors::baselines
