#include "baselines/lp_baseline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <tuple>

#include "graph/shortest_paths.h"
#include "primitives/pipelined.h"
#include "util/random.h"

namespace nors::baselines {

namespace {

using graph::Dist;
using graph::Vertex;

}  // namespace

LpBaselineScheme LpBaselineScheme::build(const graph::WeightedGraph& g,
                                         const Params& params,
                                         int bfs_height) {
  NORS_CHECK(params.k >= 1);
  LpBaselineScheme s;
  s.g_ = &g;
  s.params_ = params;
  const int n = g.n();
  util::Rng rng(params.seed);

  // 1. Skeleton sample: ≈ factor · √n · ln n vertices.
  const double p = std::min(
      1.0, params.skeleton_factor * std::log(std::max(2, n)) /
               std::sqrt(static_cast<double>(n)));
  for (Vertex v = 0; v < n; ++v) {
    if (rng.bernoulli(p)) s.skeleton_.push_back(v);
  }
  if (s.skeleton_.empty()) s.skeleton_.push_back(0);

  // 2. Voronoi forest around the skeleton.
  const auto vor = graph::multi_source_dijkstra(g, s.skeleton_);
  s.vor_root_ = vor.source;
  s.vor_dist_ = vor.dist;
  std::map<Vertex, std::vector<Vertex>> members;
  for (Vertex v = 0; v < n; ++v) {
    members[vor.source[static_cast<std::size_t>(v)]].push_back(v);
  }
  for (const auto& [root, mem] : members) {
    std::unordered_map<Vertex, Vertex> par;
    std::unordered_map<Vertex, std::int32_t> ports;
    for (Vertex v : mem) {
      if (v == root) continue;
      par[v] = vor.parent[static_cast<std::size_t>(v)];
      ports[v] = vor.parent_port[static_cast<std::size_t>(v)];
    }
    s.vor_trees_.emplace(
        root, treeroute::TzTreeScheme::build(g, mem, par, ports, root));
  }

  // 3. Virtual skeleton graph: contract Voronoi regions; keep the lightest
  // realizing edge per skeleton pair, remembered per direction.
  struct Realization {
    Dist w = graph::kDistInf;
    Vertex x = graph::kNoVertex, y = graph::kNoVertex;
    std::int32_t xy_port = graph::kNoPort;
  };
  std::map<std::pair<Vertex, Vertex>, Realization> virt;  // r1 < r2
  for (Vertex x = 0; x < n; ++x) {
    for (std::int32_t pp = 0; pp < g.degree(x); ++pp) {
      const auto& e = g.edge(x, pp);
      const Vertex r1 = vor.source[static_cast<std::size_t>(x)];
      const Vertex r2 = vor.source[static_cast<std::size_t>(e.to)];
      if (r1 == r2) continue;
      const Dist w = vor.dist[static_cast<std::size_t>(x)] + e.w +
                     vor.dist[static_cast<std::size_t>(e.to)];
      auto key = r1 < r2 ? std::make_pair(r1, r2) : std::make_pair(r2, r1);
      auto& cur = virt[key];
      if (w < cur.w) {
        // Store oriented from key.first.
        if (r1 == key.first) {
          cur = {w, x, e.to, pp};
        } else {
          cur = {w, e.to, x, e.rev};
        }
      }
    }
  }

  // 4. Spanner over the virtual skeleton graph (indices = skeleton order).
  std::unordered_map<Vertex, int> sk_index;
  for (std::size_t i = 0; i < s.skeleton_.size(); ++i) {
    sk_index[s.skeleton_[i]] = static_cast<int>(i);
  }
  graph::WeightedGraph vg(static_cast<int>(s.skeleton_.size()));
  std::vector<std::pair<Vertex, Vertex>> vg_keys;
  for (const auto& [key, real] : virt) {
    vg.add_edge(sk_index.at(key.first), sk_index.at(key.second),
                std::max<Dist>(1, real.w));
    vg_keys.push_back(key);
  }
  vg.freeze();
  util::Rng sp_rng = rng.fork(17);
  const auto vsp = baswana_sen_spanner(vg, params.k, sp_rng);
  s.spanner_ = vsp;

  // 5. Materialize skeleton edges with both-direction realization info.
  for (const auto& e : vsp) {
    const Vertex r1 = s.skeleton_[static_cast<std::size_t>(e.u)];
    const Vertex r2 = s.skeleton_[static_cast<std::size_t>(e.v)];
    const auto key = r1 < r2 ? std::make_pair(r1, r2) : std::make_pair(r2, r1);
    const auto& real = virt.at(key);
    // Oriented from key.first = min(r1,r2).
    SkeletonEdge fwd;
    fwd.r1 = key.first;
    fwd.r2 = key.second;
    fwd.w = real.w;
    fwd.x = real.x;
    fwd.y = real.y;
    fwd.x_label = s.vor_trees_.at(key.first).label(real.x);
    fwd.xy_port = real.xy_port;
    const int idx = static_cast<int>(s.skeleton_edges_.size());
    s.skeleton_edges_.push_back(fwd);
    // Reverse orientation entry.
    SkeletonEdge rev;
    rev.r1 = key.second;
    rev.r2 = key.first;
    rev.w = real.w;
    rev.x = real.y;
    rev.y = real.x;
    rev.x_label = s.vor_trees_.at(key.second).label(real.y);
    rev.xy_port = g.edge(real.x, real.xy_port).rev;
    const int ridx = static_cast<int>(s.skeleton_edges_.size());
    s.skeleton_edges_.push_back(rev);
    s.skeleton_adj_[fwd.r1].push_back(idx);
    s.skeleton_adj_[rev.r1].push_back(ridx);
  }

  // 6. Round-cost charges (see DESIGN.md): skeleton Voronoi growth, virtual
  // graph assembly, k spanner phases, spanner broadcast to all vertices.
  int max_hops = 0;
  for (Vertex v = 0; v < n; ++v) {
    max_hops = std::max(max_hops,
                        static_cast<int>(vor.hops[static_cast<std::size_t>(v)]));
  }
  s.ledger_.add("lp13/voronoi growth", congest::CostKind::kAccounted,
                static_cast<std::int64_t>(max_hops) + 1, 0,
                "hops=" + std::to_string(max_hops));
  s.ledger_.add("lp13/virtual graph", congest::CostKind::kAccounted,
                primitives::pipelined_broadcast_rounds(
                    static_cast<std::int64_t>(virt.size()), bfs_height));
  s.ledger_.add(
      "lp13/spanner phases", congest::CostKind::kAccounted,
      static_cast<std::int64_t>(params.k) *
          primitives::pipelined_broadcast_rounds(
              static_cast<std::int64_t>(s.skeleton_.size()), bfs_height));
  // Each spanner edge record: (r1, r2, w, x, y, port, label) — count words.
  std::int64_t words = 0;
  for (const auto& e : s.skeleton_edges_) {
    words += 6 + e.x_label.words();
  }
  s.ledger_.add("lp13/spanner broadcast", congest::CostKind::kAccounted,
                primitives::pipelined_broadcast_rounds(
                    (words + congest::kMaxWords - 1) / congest::kMaxWords,
                    bfs_height),
                words / congest::kMaxWords);
  return s;
}

std::vector<Vertex> LpBaselineScheme::spanner_path(Vertex r_from,
                                                   Vertex r_to) const {
  // Local Dijkstra over the (globally known) skeleton spanner.
  std::unordered_map<Vertex, Dist> dist;
  std::unordered_map<Vertex, int> via;  // edge index into skeleton_edges_
  using Item = std::tuple<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[r_from] = 0;
  pq.emplace(0, r_from);
  while (!pq.empty()) {
    const auto [d, r] = pq.top();
    pq.pop();
    if (d != dist.at(r)) continue;
    if (r == r_to) break;
    auto it = skeleton_adj_.find(r);
    if (it == skeleton_adj_.end()) continue;
    for (int idx : it->second) {
      const auto& e = skeleton_edges_[static_cast<std::size_t>(idx)];
      const Dist nd = d + e.w;
      auto jt = dist.find(e.r2);
      if (jt == dist.end() || nd < jt->second) {
        dist[e.r2] = nd;
        via[e.r2] = idx;
        pq.emplace(nd, e.r2);
      }
    }
  }
  NORS_CHECK_MSG(dist.count(r_to), "skeleton spanner is disconnected");
  std::vector<Vertex> path;  // edge indices reversed into roots
  std::vector<Vertex> rev;
  Vertex cur = r_to;
  while (cur != r_from) {
    rev.push_back(cur);
    cur = skeleton_edges_[static_cast<std::size_t>(via.at(cur))].r1;
  }
  rev.push_back(r_from);
  path.assign(rev.rbegin(), rev.rend());
  return path;
}

LpBaselineScheme::RouteResult LpBaselineScheme::route(Vertex u,
                                                      Vertex v) const {
  RouteResult r;
  if (u == v) {
    r.ok = true;
    return r;
  }
  const Vertex ru = vor_root_[static_cast<std::size_t>(u)];
  const Vertex rv = vor_root_[static_cast<std::size_t>(v)];
  Vertex x = u;
  auto step = [&](std::int32_t port) {
    const auto& e = g_->edge(x, port);
    r.length += e.w;
    ++r.hops;
    x = e.to;
    NORS_CHECK_MSG(r.hops <= 8 * g_->n(), "routing loop detected");
  };

  if (ru == rv) {
    // Same Voronoi region: pure tree routing.
    const auto& tree = vor_trees_.at(ru);
    const auto dest = tree.label(v);
    while (x != v) {
      step(treeroute::TzTreeScheme::next_hop(tree.table(x), dest));
    }
    r.ok = true;
    return r;
  }

  // Leg A: climb to the skeleton root of u's region.
  {
    const auto& tree = vor_trees_.at(ru);
    while (x != ru) step(tree.table(x).parent_port);
  }
  // Leg B: follow the spanner path, realizing each virtual edge.
  const std::vector<Vertex> path = spanner_path(ru, rv);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Vertex rc = path[i];
    const Vertex rn = path[i + 1];
    // Find the oriented skeleton edge rc -> rn (the router recomputes this
    // locally from its global spanner copy).
    const SkeletonEdge* edge = nullptr;
    for (int idx : skeleton_adj_.at(rc)) {
      const auto& e = skeleton_edges_[static_cast<std::size_t>(idx)];
      if (e.r2 == rn && (edge == nullptr || e.w < edge->w)) edge = &e;
    }
    NORS_CHECK(edge != nullptr);
    // Down Vor(rc) to the realizing endpoint x*, cross, up Vor(rn).
    const auto& tree_c = vor_trees_.at(rc);
    while (x != edge->x) {
      step(treeroute::TzTreeScheme::next_hop(tree_c.table(x), edge->x_label));
    }
    step(edge->xy_port);
    const auto& tree_n = vor_trees_.at(rn);
    while (x != rn) step(tree_n.table(x).parent_port);
  }
  // Leg C: descend to v.
  {
    const auto& tree = vor_trees_.at(rv);
    const auto dest = tree.label(v);
    while (x != v) {
      step(treeroute::TzTreeScheme::next_hop(tree.table(x), dest));
    }
  }
  r.ok = true;
  return r;
}

std::int64_t LpBaselineScheme::table_words(Vertex v) const {
  // Every vertex stores: its Voronoi table + root + dist, and the entire
  // skeleton spanner with realization labels (the Ω(√n) part).
  std::int64_t words = 2 + 6;  // root, dist, local tree table
  for (const auto& e : skeleton_edges_) words += 6 + e.x_label.words();
  (void)v;
  return words;
}

std::int64_t LpBaselineScheme::label_words(Vertex v) const {
  const Vertex rv = vor_root_[static_cast<std::size_t>(v)];
  return 2 + vor_trees_.at(rv).label(v).words();
}

}  // namespace nors::baselines
