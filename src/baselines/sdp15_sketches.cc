#include "baselines/sdp15_sketches.h"

#include "primitives/cluster_bf.h"
#include "primitives/hierarchy.h"
#include "primitives/set_bf.h"
#include "util/random.h"

namespace nors::baselines {

namespace {

using graph::Dist;
using graph::Vertex;

}  // namespace

Sdp15Sketches Sdp15Sketches::build(const graph::WeightedGraph& g,
                                   const Params& params) {
  NORS_CHECK(params.k >= 1);
  Sdp15Sketches s;
  s.k_ = params.k;
  s.n_ = static_cast<std::size_t>(g.n());
  const int n = g.n();
  const int k = params.k;

  util::Rng rng(params.seed);
  const auto h = primitives::Hierarchy::sample(n, k, rng);

  // Exact pivots at every level by set-Bellman–Ford (simulated). Unlike
  // the paper's scheme there is no hop bound to hide behind: explorations
  // run to quiescence, i.e. through the full shortest-path hop radius.
  s.pivot_.assign(static_cast<std::size_t>(k) * s.n_, graph::kNoVertex);
  s.pivot_dist_.assign(static_cast<std::size_t>(k + 1) * s.n_,
                       graph::kDistInf);
  for (Vertex v = 0; v < n; ++v) {
    s.pivot_[static_cast<std::size_t>(v)] = v;
    s.pivot_dist_[static_cast<std::size_t>(v)] = 0;
  }
  for (int i = 1; i < k; ++i) {
    const auto r = primitives::distributed_set_bellman_ford(
        g, h.set_at(i), params.edge_capacity);
    for (Vertex v = 0; v < n; ++v) {
      s.pivot_[static_cast<std::size_t>(i) * s.n_ + v] =
          r.source[static_cast<std::size_t>(v)];
      s.pivot_dist_[static_cast<std::size_t>(i) * s.n_ + v] =
          r.dist[static_cast<std::size_t>(v)];
    }
    s.ledger_.add("sdp15/pivots level " + std::to_string(i),
                  congest::CostKind::kSimulated, r.rounds, r.messages);
  }

  // Exact clusters at every level (v ∈ C(w) ⟺ w ∈ B(v)), again simulated;
  // the top level explores the whole graph from every A_{k-1} vertex.
  s.bunch_.assign(s.n_, {});
  for (int i = 0; i < k; ++i) {
    const auto roots = h.exactly_at(i);
    if (roots.empty()) continue;
    const std::size_t row = static_cast<std::size_t>(i + 1) * s.n_;
    const auto admit = [&](Vertex v, Vertex, Dist b) {
      return b < s.pivot_dist_[row + static_cast<std::size_t>(v)];
    };
    const auto res = primitives::distributed_cluster_bellman_ford(
        g, roots, admit, params.edge_capacity);
    s.ledger_.add("sdp15/clusters level " + std::to_string(i),
                  congest::CostKind::kSimulated, res.rounds, res.messages,
                  "roots=" + std::to_string(roots.size()));
    for (Vertex v = 0; v < n; ++v) {
      for (std::size_t e = res.off[static_cast<std::size_t>(v)];
           e < res.off[static_cast<std::size_t>(v) + 1]; ++e) {
        s.bunch_[static_cast<std::size_t>(v)]
                [res.roots[static_cast<std::size_t>(res.slot[e])]] =
            res.rec[e].dist;
      }
    }
  }
  return s;
}

Sdp15Sketches::QueryResult Sdp15Sketches::query(Vertex u, Vertex v) const {
  QueryResult r;
  Vertex w = u;
  Dist d_uw = 0;
  for (int i = 0;; ++i) {
    NORS_CHECK_MSG(i < k_, "query exceeded k iterations");
    ++r.iterations;
    const auto& bunch_v = bunch_[static_cast<std::size_t>(v)];
    const auto it = bunch_v.find(w);
    if (it != bunch_v.end()) {
      r.estimate = d_uw + it->second;
      return r;
    }
    std::swap(u, v);
    w = pivot_[static_cast<std::size_t>(i + 1) * n_ +
               static_cast<std::size_t>(u)];
    d_uw = pivot_dist_[static_cast<std::size_t>(i + 1) * n_ +
                       static_cast<std::size_t>(u)];
  }
}

std::int64_t Sdp15Sketches::sketch_words(Vertex v) const {
  return 2LL * k_ +
         2LL * static_cast<std::int64_t>(
                   bunch_[static_cast<std::size_t>(v)].size());
}

}  // namespace nors::baselines
