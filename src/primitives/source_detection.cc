#include "primitives/source_detection.h"

#include <algorithm>

#include "util/radix.h"

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

/// Reusable buffers for the per-(source, scale) Bellman–Ford sweeps. The
/// sweep allocates nothing and costs O(region explored), not O(n): between
/// runs the arrays hold their rest state (inf / kNoPort) and only the
/// entries named in `touched` are dirty, so each run resets exactly what it
/// wrote.
struct ScaleScratch {
  std::vector<Dist> cur, next;           // committed / tentative, in q units
  std::vector<std::int32_t> cur_port;    // committed parent port
  std::vector<std::int32_t> next_port;   // tentative parent port
  std::vector<Vertex> frontier, changed;
  std::vector<Vertex> touched;           // every vertex written this run
  std::vector<char> in_touched;
  std::vector<Vertex> sort_scratch;

  explicit ScaleScratch(std::size_t n)
      : cur(n, graph::kDistInf),
        next(n, graph::kDistInf),
        cur_port(n, graph::kNoPort),
        next_port(n, graph::kNoPort),
        in_touched(n, 0) {}

  void touch(Vertex v) {
    if (!in_touched[static_cast<std::size_t>(v)]) {
      in_touched[static_cast<std::size_t>(v)] = 1;
      touched.push_back(v);
    }
  }

  /// Restore the rest state after the caller has consumed `touched`.
  void reset() {
    for (const Vertex v : touched) {
      const auto vi = static_cast<std::size_t>(v);
      cur[vi] = graph::kDistInf;
      next[vi] = graph::kDistInf;
      cur_port[vi] = graph::kNoPort;
      next_port[vi] = graph::kNoPort;
      in_touched[vi] = 0;
    }
    touched.clear();
    frontier.clear();
    changed.clear();
  }
};

/// One distance scale of the [Nan14] rounding scheme: exact hop-bounded
/// Bellman–Ford under quantized weights wq (ceil(w/q), precomputed per
/// scale, aligned with the CSR half-edge array), truncated at `cap`
/// quantized units (the scale only covers its distance window — this is
/// what bounds the number of distinct distance levels, and what makes the
/// scheme genuinely approximate instead of collapsing into one exact
/// sweep). On return, s.cur holds quantized distances and s.cur_port the
/// parent ports for every vertex in s.touched; call s.reset() afterwards.
struct SweepOutcome {
  int iterations = 0;
  bool truncated = false;  // some relaxation hit the cap
};

SweepOutcome run_scale(const graph::WeightedGraph& g, Vertex src,
                       std::int64_t hop_bound, const std::vector<Dist>& wq,
                       Dist cap, ScaleScratch& s) {
  SweepOutcome out;
  s.cur[static_cast<std::size_t>(src)] = 0;
  s.next[static_cast<std::size_t>(src)] = 0;
  s.touch(src);
  s.frontier.assign(1, src);
  for (std::int64_t it = 0; it < hop_bound && !s.frontier.empty(); ++it) {
    s.changed.clear();
    for (const Vertex v : s.frontier) {
      const Dist dv = s.cur[static_cast<std::size_t>(v)];
      const std::size_t base = g.edge_base(v);
      const auto nbrs = g.neighbors(v);
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        const Dist nd = dv + wq[base + p];
        if (nd > cap) {
          out.truncated = true;
          continue;
        }
        const auto to = static_cast<std::size_t>(nbrs[p].to);
        if (nd < s.next[to]) {
          if (s.next[to] == s.cur[to]) s.changed.push_back(nbrs[p].to);
          s.next[to] = nd;
          s.next_port[to] = nbrs[p].rev;
        }
      }
    }
    if (s.changed.empty()) break;
    // The first-improvement guard above keeps `changed` duplicate-free, so
    // ordering ascending (the historical frontier order) is all that's left.
    util::radix_sort(s.changed, s.sort_scratch, g.n() - 1);
    for (const Vertex v : s.changed) {
      s.cur[static_cast<std::size_t>(v)] = s.next[static_cast<std::size_t>(v)];
      s.cur_port[static_cast<std::size_t>(v)] =
          s.next_port[static_cast<std::size_t>(v)];
      s.touch(v);
    }
    s.frontier.swap(s.changed);
    out.iterations = static_cast<int>(it) + 1;
  }
  return out;
}

}  // namespace

SourceDetectionResult source_detection(
    const graph::WeightedGraph& g, const std::vector<Vertex>& sources,
    std::int64_t hop_bound, const util::Epsilon& eps, int bfs_height) {
  NORS_CHECK(!sources.empty());
  NORS_CHECK(hop_bound >= 1);
  const auto n = static_cast<std::size_t>(g.n());
  SourceDetectionResult out;
  out.n_ = n;
  out.sources = sources;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.source_index[sources[i]] = static_cast<int>(i);
  }
  out.dist.assign(sources.size() * n, graph::kDistInf);
  out.parent_port.assign(sources.size() * n, graph::kNoPort);

  // Scales 2^s up to the largest possible B-hop distance. Scale s uses
  // quantum q_s = max(1, floor(ε·2^s / (2B))) and covers rounded distances
  // up to cap_s = ceil(2^s/q_s) + B; every true B-hop distance d lands in
  // the window of s* = ceil(log2 d) with error ≤ B·q_{s*} ≤ ε·d.
  const Dist max_dist = std::min<Dist>(
      graph::kDistInf / 4,
      static_cast<Dist>(hop_bound) * std::max<Dist>(1, g.max_weight()));
  struct Scale {
    Dist q;
    Dist cap;
  };
  std::vector<Scale> scales;
  for (Dist scale = 1; scale > 0 && scale / 2 <= max_dist; scale *= 2) {
    const __int128 num = static_cast<__int128>(eps.num()) * scale;
    const __int128 den = static_cast<__int128>(eps.den()) * 2 * hop_bound;
    const Dist q = std::max<Dist>(1, static_cast<Dist>(num / den));
    const Dist cap = (scale + q - 1) / q + hop_bound;
    scales.push_back({q, cap});
  }
  out.distinct_scales = static_cast<int>(scales.size());

  // Scale-major execution: the quantized weights depend only on the scale,
  // so one pass per scale over the CSR half-edge array serves every source
  // and the relaxation loop never divides. Each source still runs exactly
  // the scales it would have run source-major — the per-source early exit
  // below (and therefore every output, including the round charge, which
  // counts source 0's scales only) is order-independent.
  std::int64_t cost = 0;
  int executed = 0;
  std::vector<char> src_active(sources.size(), 1);
  std::size_t remaining = sources.size();
  ScaleScratch scratch(n);
  std::vector<Dist> wq(g.total_half_edges());
  for (const auto& sc : scales) {
    if (remaining == 0) break;
    {
      std::size_t idx = 0;
      for (Vertex v = 0; v < g.n(); ++v) {
        for (const auto& e : g.neighbors(v)) {
          wq[idx++] = sc.q == 1 ? e.w : (e.w + sc.q - 1) / sc.q;
        }
      }
    }
    for (std::size_t si = 0; si < sources.size(); ++si) {
      if (!src_active[si]) continue;
      const SweepOutcome run =
          run_scale(g, sources[si], hop_bound, wq, sc.cap, scratch);
      if (si == 0) {
        // Round charge per executed scale (the pipelined [Nan14] schedule
        // runs all sources of one scale together): |S| + hop layers + D.
        cost += static_cast<std::int64_t>(sources.size()) +
                std::min<std::int64_t>(hop_bound,
                                       std::max(1, run.iterations)) +
                2 * static_cast<std::int64_t>(bfs_height);
        ++executed;
      }
      out.max_iterations = std::max(out.max_iterations, run.iterations);
      for (const Vertex tv : scratch.touched) {
        const auto v = static_cast<std::size_t>(tv);
        const Dist d = scratch.cur[v] * sc.q;
        auto& cell = out.dist[si * n + v];
        if (d < cell) {
          cell = d;
          out.parent_port[si * n + v] = scratch.cur_port[v];
        }
      }
      scratch.reset();
      // Early exit: an untruncated, fully converged exact-quantum sweep is
      // the complete d^(B); coarser scales can never improve on it.
      if (sc.q == 1 && !run.truncated && run.iterations < hop_bound) {
        src_active[si] = 0;
        --remaining;
      }
    }
  }
  out.executed_scales = executed;
  out.round_cost = cost;
  return out;
}

}  // namespace nors::primitives
