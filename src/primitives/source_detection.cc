#include "primitives/source_detection.h"

#include <algorithm>

#include "graph/shortest_paths.h"

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

/// One distance scale of the [Nan14] rounding scheme: exact hop-bounded
/// Bellman–Ford under quantized weights w' = ceil(w/q), truncated at `cap`
/// quantized units (the scale only covers its distance window — this is
/// what bounds the number of distinct distance levels, and what makes the
/// scheme genuinely approximate instead of collapsing into one exact
/// sweep). Distances are returned in original units.
struct ScaleRun {
  std::vector<Dist> dist;
  std::vector<std::int32_t> parent_port;
  int iterations = 0;
  bool truncated = false;  // some relaxation hit the cap
};

ScaleRun run_scale(const graph::WeightedGraph& g, Vertex src,
                   std::int64_t hop_bound, Dist q, Dist cap) {
  const auto n = static_cast<std::size_t>(g.n());
  ScaleRun r;
  r.dist.assign(n, graph::kDistInf);
  r.parent_port.assign(n, graph::kNoPort);
  std::vector<Dist> cur(n, graph::kDistInf);  // in q units
  cur[static_cast<std::size_t>(src)] = 0;
  std::vector<Dist> next = cur;
  std::vector<std::int32_t> next_port(n, graph::kNoPort);
  std::vector<Vertex> frontier{src};
  for (std::int64_t it = 0; it < hop_bound && !frontier.empty(); ++it) {
    std::vector<Vertex> changed;
    for (Vertex v : frontier) {
      const Dist dv = cur[static_cast<std::size_t>(v)];
      for (std::int32_t p = 0; p < g.degree(v); ++p) {
        const auto& e = g.edge(v, p);
        const Dist wq = (e.w + q - 1) / q;  // ceil(w/q)
        const Dist nd = dv + wq;
        if (nd > cap) {
          r.truncated = true;
          continue;
        }
        if (nd < next[static_cast<std::size_t>(e.to)]) {
          if (next[static_cast<std::size_t>(e.to)] ==
              cur[static_cast<std::size_t>(e.to)]) {
            changed.push_back(e.to);
          }
          next[static_cast<std::size_t>(e.to)] = nd;
          next_port[static_cast<std::size_t>(e.to)] = e.rev;
        }
      }
    }
    if (changed.empty()) break;
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    for (Vertex v : changed) {
      cur[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(v)];
      r.parent_port[static_cast<std::size_t>(v)] =
          next_port[static_cast<std::size_t>(v)];
    }
    frontier = std::move(changed);
    r.iterations = static_cast<int>(it) + 1;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!graph::is_inf(cur[v])) r.dist[v] = cur[v] * q;
  }
  return r;
}

}  // namespace

SourceDetectionResult source_detection(
    const graph::WeightedGraph& g, const std::vector<Vertex>& sources,
    std::int64_t hop_bound, const util::Epsilon& eps, int bfs_height) {
  NORS_CHECK(!sources.empty());
  NORS_CHECK(hop_bound >= 1);
  const auto n = static_cast<std::size_t>(g.n());
  SourceDetectionResult out;
  out.n_ = n;
  out.sources = sources;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.source_index[sources[i]] = static_cast<int>(i);
  }
  out.dist.assign(sources.size() * n, graph::kDistInf);
  out.parent_port.assign(sources.size() * n, graph::kNoPort);

  // Scales 2^s up to the largest possible B-hop distance. Scale s uses
  // quantum q_s = max(1, floor(ε·2^s / (2B))) and covers rounded distances
  // up to cap_s = ceil(2^s/q_s) + B; every true B-hop distance d lands in
  // the window of s* = ceil(log2 d) with error ≤ B·q_{s*} ≤ ε·d.
  const Dist max_dist = std::min<Dist>(
      graph::kDistInf / 4,
      static_cast<Dist>(hop_bound) * std::max<Dist>(1, g.max_weight()));
  struct Scale {
    Dist q;
    Dist cap;
  };
  std::vector<Scale> scales;
  for (Dist scale = 1; scale > 0 && scale / 2 <= max_dist; scale *= 2) {
    const __int128 num = static_cast<__int128>(eps.num()) * scale;
    const __int128 den = static_cast<__int128>(eps.den()) * 2 * hop_bound;
    const Dist q = std::max<Dist>(1, static_cast<Dist>(num / den));
    const Dist cap = (scale + q - 1) / q + hop_bound;
    scales.push_back({q, cap});
  }
  out.distinct_scales = static_cast<int>(scales.size());

  std::int64_t cost = 0;
  int executed = 0;
  for (std::size_t si = 0; si < sources.size(); ++si) {
    for (const auto& sc : scales) {
      const ScaleRun run =
          run_scale(g, sources[si], hop_bound, sc.q, sc.cap);
      if (si == 0) {
        // Round charge per executed scale (the pipelined [Nan14] schedule
        // runs all sources of one scale together): |S| + hop layers + D.
        cost += static_cast<std::int64_t>(sources.size()) +
                std::min<std::int64_t>(hop_bound,
                                       std::max(1, run.iterations)) +
                2 * static_cast<std::int64_t>(bfs_height);
        ++executed;
      }
      out.max_iterations = std::max(out.max_iterations, run.iterations);
      for (std::size_t v = 0; v < n; ++v) {
        auto& cell = out.dist[si * n + v];
        if (run.dist[v] < cell) {
          cell = run.dist[v];
          out.parent_port[si * n + v] = run.parent_port[v];
        }
      }
      // Early exit: an untruncated, fully converged exact-quantum sweep is
      // the complete d^(B); coarser scales can never improve on it.
      if (sc.q == 1 && !run.truncated &&
          run.iterations < hop_bound) {
        break;
      }
    }
  }
  out.executed_scales = executed;
  out.round_cost = cost;
  return out;
}

}  // namespace nors::primitives
