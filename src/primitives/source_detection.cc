#include "primitives/source_detection.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "util/arena.h"
#include "util/radix.h"
#include "util/threads.h"

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

/// Reusable buffers for the per-(source, scale) Bellman–Ford sweeps. The
/// sweep allocates nothing and costs O(region explored), not O(n): between
/// runs the arrays hold their rest state (inf / kNoPort) and only the
/// entries named in `touched` are dirty, so each run resets exactly what it
/// wrote. The n-sized arrays draw from the arena pool, so worker scratch
/// recycles across calls (per level, per attempt, per bench row) instead of
/// being reallocated.
struct ScaleScratch {
  util::PooledBuf<Dist> cur, next;           // committed / tentative, q units
  util::PooledBuf<std::int32_t> cur_port;    // committed parent port
  util::PooledBuf<std::int32_t> next_port;   // tentative parent port
  std::vector<Vertex> frontier, changed;
  std::vector<Vertex> touched;               // every vertex written this run
  util::PooledBuf<char> in_touched;
  std::vector<Vertex> sort_scratch;

  explicit ScaleScratch(std::size_t n) {
    cur.assign_fill(n, graph::kDistInf);
    next.assign_fill(n, graph::kDistInf);
    cur_port.assign_fill(n, graph::kNoPort);
    next_port.assign_fill(n, graph::kNoPort);
    in_touched.assign_fill(n, 0);
  }

  void touch(Vertex v) {
    if (!in_touched[static_cast<std::size_t>(v)]) {
      in_touched[static_cast<std::size_t>(v)] = 1;
      touched.push_back(v);
    }
  }

  /// Restore the rest state after the caller has consumed `touched`.
  void reset() {
    for (const Vertex v : touched) {
      const auto vi = static_cast<std::size_t>(v);
      cur[vi] = graph::kDistInf;
      next[vi] = graph::kDistInf;
      cur_port[vi] = graph::kNoPort;
      next_port[vi] = graph::kNoPort;
      in_touched[vi] = 0;
    }
    touched.clear();
    frontier.clear();
    changed.clear();
  }
};

/// One distance scale of the [Nan14] rounding scheme: exact hop-bounded
/// Bellman–Ford under quantized weights wq (ceil(w/q), precomputed per
/// scale, aligned with the CSR half-edge array; wq == nullptr means q == 1,
/// where the quantized weight is the weight itself), truncated at `cap`
/// quantized units (the scale only covers its distance window — this is
/// what bounds the number of distinct distance levels, and what makes the
/// scheme genuinely approximate instead of collapsing into one exact
/// sweep). On return, s.cur holds quantized distances and s.cur_port the
/// parent ports for every vertex in s.touched; call s.reset() afterwards.
struct SweepOutcome {
  int iterations = 0;
  bool truncated = false;  // some relaxation hit the cap
};

template <bool kUnitQuantum>
SweepOutcome run_scale_impl(const graph::WeightedGraph& g, Vertex src,
                            std::int64_t hop_bound, const Dist* wq, Dist cap,
                            ScaleScratch& s) {
  SweepOutcome out;
  s.cur[static_cast<std::size_t>(src)] = 0;
  s.next[static_cast<std::size_t>(src)] = 0;
  s.touch(src);
  s.frontier.assign(1, src);
  for (std::int64_t it = 0; it < hop_bound && !s.frontier.empty(); ++it) {
    s.changed.clear();
    for (const Vertex v : s.frontier) {
      const Dist dv = s.cur[static_cast<std::size_t>(v)];
      const std::size_t base = g.edge_base(v);
      const auto nbrs = g.neighbors(v);
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        const Dist nd = dv + (kUnitQuantum ? nbrs[p].w : wq[base + p]);
        if (nd > cap) {
          out.truncated = true;
          continue;
        }
        const auto to = static_cast<std::size_t>(nbrs[p].to);
        if (nd < s.next[to]) {
          if (s.next[to] == s.cur[to]) s.changed.push_back(nbrs[p].to);
          s.next[to] = nd;
          s.next_port[to] = nbrs[p].rev;
        }
      }
    }
    if (s.changed.empty()) break;
    // The first-improvement guard above keeps `changed` duplicate-free, so
    // ordering ascending (the historical frontier order) is all that's left.
    util::radix_sort(s.changed, s.sort_scratch, g.n() - 1);
    for (const Vertex v : s.changed) {
      s.cur[static_cast<std::size_t>(v)] = s.next[static_cast<std::size_t>(v)];
      s.cur_port[static_cast<std::size_t>(v)] =
          s.next_port[static_cast<std::size_t>(v)];
      s.touch(v);
    }
    s.frontier.swap(s.changed);
    out.iterations = static_cast<int>(it) + 1;
  }
  return out;
}

SweepOutcome run_scale(const graph::WeightedGraph& g, Vertex src,
                       std::int64_t hop_bound, const Dist* wq, Dist cap,
                       ScaleScratch& s) {
  return wq == nullptr
             ? run_scale_impl<true>(g, src, hop_bound, nullptr, cap, s)
             : run_scale_impl<false>(g, src, hop_bound, wq, cap, s);
}

/// Scratch for the exact-scale fast path (DESIGN.md §7): a bucket-queue
/// (Dial) Dijkstra that reconstructs the Bellman–Ford sweep's committed
/// layers and winning parent ports *during relaxation* — every shortest-path
/// predecessor of v settles (and therefore relaxes v) strictly before v
/// settles, so the first-writer tie-break resolves with one lexicographic
/// candidate update on equal proposals, and the hot loop does no more work
/// than a plain Dijkstra. A compact int32 CSR (8 bytes per half edge, port
/// order preserved) is built once per source_detection call so the sweep's
/// working set stays cache-resident; everything else resets through
/// `touched`, so a run costs O(region + max distance), never O(n). All
/// n- and m-sized arrays draw from the arena pool and recycle across calls.
struct FastScratch {
  struct Cell {
    std::int32_t dist;   // INT32_MAX at rest
    std::int32_t layer;  // -1 = not settled; set at settle time
  };
  struct Cand {  // pending winner for the current tentative value
    std::int32_t layer, u, port_at_u, port;
  };
  util::PooledBuf<Cell> cell;
  util::PooledBuf<Cand> cand;  // needs no rest state: improvements reset it
  std::vector<Vertex> touched;
  std::vector<std::vector<Vertex>> buckets;
  int max_layer = 0;
  // Compact CSR (built lazily, same indexing as the graph's half edges).
  bool csr_built = false;
  bool csr_ok = false;
  util::PooledBuf<std::int64_t> off;
  struct Edge {
    std::int32_t to, w;
  };
  util::PooledBuf<Edge> edges;
  util::PooledBuf<std::int32_t> rev;

  explicit FastScratch(std::size_t n) {
    cell.assign_fill(n, {INT32_MAX, -1});
    cand.assign_fill(n, {0, 0, 0, 0});
  }

  void build_csr(const graph::WeightedGraph& g) {
    csr_built = true;
    if (g.max_weight() > INT32_MAX) return;  // csr_ok stays false
    const int n = g.n();
    off.ensure(static_cast<std::size_t>(n) + 1);
    edges.ensure(g.total_half_edges());
    rev.ensure(g.total_half_edges());
    std::size_t at = 0;
    for (Vertex v = 0; v < n; ++v) {
      off[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(at);
      for (const auto& e : g.neighbors(v)) {
        edges[at] = {e.to, static_cast<std::int32_t>(e.w)};
        rev[at] = e.rev;
        ++at;
      }
    }
    off[static_cast<std::size_t>(n)] = static_cast<std::int64_t>(at);
    csr_ok = true;
  }

  void reset() {
    for (const Vertex v : touched) {
      cell[static_cast<std::size_t>(v)] = {INT32_MAX, -1};
    }
    touched.clear();
  }
};

/// Exact-quantum fast path. A q=1 scale whose sweep never hits `cap` and
/// converges within the hop bound computes the plain single-source shortest
/// paths — so run the Dial Dijkstra above and reproduce the sweep's outputs
/// exactly:
///
///   * distances — identical by optimality;
///   * iterations — the sweep commits v's final value at iteration
///     L(v) − 1, where L(v) = 1 + min over shortest-path predecessors
///     (L(src) = 0), so its iteration count is max_v L(v);
///   * parent ports — the sweep's winner is the first relaxation achieving
///     the final value: the predecessor with minimal (L(u), u), and among
///     parallel edges of that u the one with the smallest port at u. Only
///     exact-valued predecessors can ever propose a final value, so the
///     candidate kept on equal proposals is exact, not heuristic.
///
/// Sound only when no proposal can exceed `cap` (else the sweep would set
/// `truncated`): every value the sweep commits at iteration t is the weight
/// of a ≤(t+1)-hop path, so proposals are bounded by max_w · (max_layer+1).
/// Returns false — leaving no state behind — when that margin, the hop
/// bound, or the cap itself fails; the caller falls back to the sweep. On
/// success, f.cell/f.cand hold the sweep's exact output for f.touched.
bool run_fast_exact(const graph::WeightedGraph& g, Vertex src,
                    std::int64_t hop_bound, Dist cap, FastScratch& f) {
  if (!f.csr_built) f.build_csr(g);
  // Distances live in int32 cells; a window past 2^30 cannot overflow-check
  // cheaply, so leave it to the reference sweep.
  if (!f.csr_ok || cap >= (Dist{1} << 30)) return false;
  const auto cap32 = static_cast<std::int32_t>(cap);
  f.max_layer = 0;
  f.cell[static_cast<std::size_t>(src)].dist = 0;
  f.cand[static_cast<std::size_t>(src)].port = graph::kNoPort;
  f.touched.push_back(src);
  if (f.buckets.empty()) f.buckets.resize(1);
  f.buckets[0].push_back(src);
  std::int32_t max_seen = 0;
  bool failed = false;
  for (std::int32_t d = 0; d <= max_seen && !failed; ++d) {
    // Index f.buckets afresh on every access: pushes below may grow (and
    // relocate) the outer bucket array.
    for (std::size_t bi = 0;
         bi < f.buckets[static_cast<std::size_t>(d)].size(); ++bi) {
      const Vertex v = f.buckets[static_cast<std::size_t>(d)][bi];
      const auto vi = static_cast<std::size_t>(v);
      if (f.cell[vi].dist != d || f.cell[vi].layer >= 0) continue;  // stale
      // Settle v: every shortest-path predecessor has already relaxed v, so
      // its committed layer and winning port are final in f.cand.
      const std::int32_t lv =
          v == src ? 0 : f.cand[vi].layer + 1;
      f.cell[vi].layer = lv;
      f.max_layer = std::max(f.max_layer, static_cast<int>(lv));
      const std::int64_t b0 = f.off[vi];
      const std::int64_t b1 = f.off[vi + 1];
      for (std::int64_t ei = b0; ei < b1; ++ei) {
        const auto [to, w] = f.edges[static_cast<std::size_t>(ei)];
        const std::int64_t nd64 = static_cast<std::int64_t>(d) + w;
        if (nd64 > cap32) {
          // Outside the scale window: the sweep could truncate here, so
          // the fast path is not provably equivalent. Clean up and bail.
          for (std::int32_t dd = d; dd <= max_seen; ++dd) {
            f.buckets[static_cast<std::size_t>(dd)].clear();
          }
          failed = true;
          break;
        }
        const auto nd = static_cast<std::int32_t>(nd64);
        const auto toi = static_cast<std::size_t>(to);
        const std::int32_t cur = f.cell[toi].dist;
        if (nd < cur) {
          if (cur == INT32_MAX) f.touched.push_back(to);
          f.cell[toi].dist = nd;
          f.cand[toi] = {lv, v, static_cast<std::int32_t>(ei - b0),
                         f.rev[static_cast<std::size_t>(ei)]};
          if (nd > max_seen) {
            max_seen = nd;
            if (f.buckets.size() <= static_cast<std::size_t>(nd)) {
              f.buckets.resize(static_cast<std::size_t>(nd) + 1);
            }
          }
          f.buckets[static_cast<std::size_t>(nd)].push_back(to);
        } else if (nd == cur) {
          // Equal proposal: keep the sweep's first writer — lexicographic
          // min over (committed layer, predecessor id, port at pred).
          auto& c = f.cand[toi];
          const std::int32_t p_at_u = static_cast<std::int32_t>(ei - b0);
          if (lv < c.layer ||
              (lv == c.layer &&
               (v < c.u || (v == c.u && p_at_u < c.port_at_u)))) {
            c = {lv, v, p_at_u, f.rev[static_cast<std::size_t>(ei)]};
          }
        }
      }
    }
    f.buckets[static_cast<std::size_t>(d)].clear();
  }

  // Equivalence margin: the sweep must have converged strictly within the
  // hop bound and no proposal may have reached the cap.
  const Dist max_w = std::max<Dist>(1, g.max_weight());
  if (!failed &&
      (f.max_layer >= hop_bound ||
       max_w * (static_cast<Dist>(f.max_layer) + 1) > cap)) {
    failed = true;
  }
  if (failed) {
    f.reset();
    return false;
  }
  return true;
}

struct Scale {
  Dist q;
  Dist cap;
};

}  // namespace

SourceDetectionStats source_detection_stream(
    const graph::WeightedGraph& g, const std::vector<Vertex>& sources,
    std::int64_t hop_bound, const util::Epsilon& eps, int bfs_height,
    int threads, const SourceRowSink& sink) {
  NORS_CHECK(!sources.empty());
  NORS_CHECK(hop_bound >= 1);
  const auto n = static_cast<std::size_t>(g.n());
  SourceDetectionStats out;

  // Scales 2^s up to the largest possible B-hop distance. Scale s uses
  // quantum q_s = max(1, floor(ε·2^s / (2B))) and covers rounded distances
  // up to cap_s = ceil(2^s/q_s) + B; every true B-hop distance d lands in
  // the window of s* = ceil(log2 d) with error ≤ B·q_{s*} ≤ ε·d.
  const Dist max_dist = std::min<Dist>(
      graph::kDistInf / 4,
      static_cast<Dist>(hop_bound) * std::max<Dist>(1, g.max_weight()));
  std::vector<Scale> scales;
  for (Dist scale = 1; scale > 0 && scale / 2 <= max_dist; scale *= 2) {
    const __int128 num = static_cast<__int128>(eps.num()) * scale;
    const __int128 den = static_cast<__int128>(eps.den()) * 2 * hop_bound;
    const Dist q = std::max<Dist>(1, static_cast<Dist>(num / den));
    const Dist cap = (scale + q - 1) / q + hop_bound;
    scales.push_back({q, cap});
  }
  out.distinct_scales = static_cast<int>(scales.size());

  // Source-major execution: every source runs exactly the scale sequence it
  // would have run scale-major — its early exit and fast-path failure cap
  // depend only on its own outcomes — so each source's row can be finalized
  // (min over its scales) and handed to the sink before the next source
  // starts, and the |sources| × n slab never exists. Quantized weights for
  // the few q > 1 scales are shared read-only across sources (built once,
  // on first use); q = 1 scales read the CSR weights directly.
  //
  // Exact (q=1) scales take the Dial fast path when its equivalence margin
  // holds (run_fast_exact above) — the common case for the preprocessing
  // and middle-level calls, whose hop bounds dwarf the true distances; the
  // quantized reference sweep remains the general path and the ground
  // truth the fast path is tested against.
  //
  // Validation escape hatch: NORS_SD_DISABLE_FAST=1 forces every sweep
  // through the reference Bellman–Ford. The fast path is *defined* as
  // bit-identical to the sweep; test_primitives pins the equivalence by
  // diffing full results across this knob.
  const char* no_fast = std::getenv("NORS_SD_DISABLE_FAST");
  const bool fast_enabled = no_fast == nullptr || std::atoi(no_fast) == 0;

  // Lazily built per-scale quantized weights (only q > 1 scales need them).
  std::vector<util::PooledBuf<Dist>> wq(scales.size());
  std::vector<std::unique_ptr<std::once_flag>> wq_once;
  for (std::size_t s = 0; s < scales.size(); ++s) {
    wq_once.push_back(std::make_unique<std::once_flag>());
  }
  const auto wq_for = [&](std::size_t sc_idx) -> const Dist* {
    if (scales[sc_idx].q == 1) return nullptr;
    std::call_once(*wq_once[sc_idx], [&] {
      const Dist q = scales[sc_idx].q;
      Dist* w = wq[sc_idx].ensure(g.total_half_edges());
      std::size_t idx = 0;
      for (Vertex v = 0; v < g.n(); ++v) {
        for (const auto& e : g.neighbors(v)) {
          w[idx++] = (e.w + q - 1) / q;
        }
      }
    });
    return wq[sc_idx].data();
  };

  // Worker arenas: one ScaleScratch/FastScratch pair plus one output row
  // per worker thread. Sources are independent — each owns its sink slot
  // and its own bookkeeping — so the pool size changes wall-clock only; the
  // serial fold below consumes per-source records in a fixed order.
  const int nthreads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(util::resolve_threads(threads)),
      sources.size()));
  const int nworkers = std::max(1, nthreads);
  struct Worker {
    std::unique_ptr<ScaleScratch> scale;
    std::unique_ptr<FastScratch> fast;
    util::PooledBuf<Dist> row_d;
    util::PooledBuf<std::int32_t> row_p;
    int max_iterations = 0;
  };
  std::vector<Worker> workers(static_cast<std::size_t>(nworkers));
  for (Worker& w : workers) {
    w.scale = std::make_unique<ScaleScratch>(n);
    w.fast = std::make_unique<FastScratch>(n);
    w.row_d.ensure(n);
    w.row_p.ensure(n);
  }
  // Source 0's per-scale outcomes drive the round charge (the pipelined
  // [Nan14] schedule runs all sources of one scale together), recorded by
  // whichever worker runs source 0 and folded serially below.
  std::vector<SweepOutcome> outcomes0;
  outcomes0.reserve(scales.size());

  util::parallel_for(nthreads, sources.size(), [&](int t, std::size_t si) {
    Worker& w = workers[static_cast<std::size_t>(t)];
    Dist* row_d = w.row_d.data();
    std::int32_t* row_p = w.row_p.data();
    // The row holds the previous source's values until the first executed
    // scale overwrites or resets it: a dense first scale writes every slot
    // in one fused pass (no separate fill + min-merge), a sparse first
    // scale resets the row before its merge. Later scales min-merge. This
    // is value-identical to fill-then-merge-every-scale — the first
    // executed scale's merge wins every slot against an all-∞ row.
    bool row_virgin = true;
    const auto reset_row = [&] {
      std::fill(row_d, row_d + n, graph::kDistInf);
      std::fill(row_p, row_p + n, graph::kNoPort);
    };
    // Cap at which the fast path already failed: a failure only heals once
    // the scale window grows past it.
    Dist fast_failed_cap = -1;
    for (std::size_t sc_idx = 0; sc_idx < scales.size(); ++sc_idx) {
      const Scale& sc = scales[sc_idx];
      SweepOutcome run;
      if (fast_enabled && sc.q == 1 && fast_failed_cap < sc.cap &&
          run_fast_exact(g, sources[si], hop_bound, sc.cap, *w.fast)) {
        FastScratch& fast = *w.fast;
        if (fast.touched.size() * 2 >= n) {
          // Dense region: one sequential pass over the cells beats chasing
          // the touched list in discovery order; it restores the rest state
          // as it reads, replacing the touched-driven reset.
          if (row_virgin) {
            for (std::size_t v = 0; v < n; ++v) {
              const std::int32_t dv = fast.cell[v].dist;
              if (dv == INT32_MAX) {
                row_d[v] = graph::kDistInf;
                row_p[v] = graph::kNoPort;
                continue;
              }
              fast.cell[v] = {INT32_MAX, -1};
              row_d[v] = dv;
              row_p[v] = fast.cand[v].port;
            }
          } else {
            for (std::size_t v = 0; v < n; ++v) {
              const std::int32_t dv = fast.cell[v].dist;
              if (dv == INT32_MAX) continue;
              fast.cell[v] = {INT32_MAX, -1};
              if (dv < row_d[v]) {
                row_d[v] = dv;
                row_p[v] = fast.cand[v].port;
              }
            }
          }
          fast.touched.clear();
        } else {
          if (row_virgin) reset_row();
          for (const Vertex tv : fast.touched) {
            const auto v = static_cast<std::size_t>(tv);
            const Dist d = fast.cell[v].dist;
            if (d < row_d[v]) {
              row_d[v] = d;
              row_p[v] = fast.cand[v].port;
            }
          }
          fast.reset();
        }
        run = {fast.max_layer, false};
      } else {
        if (sc.q == 1) fast_failed_cap = sc.cap;
        ScaleScratch& scratch = *w.scale;
        run = run_scale(g, sources[si], hop_bound, wq_for(sc_idx), sc.cap,
                        scratch);
        if (row_virgin) reset_row();
        for (const Vertex tv : scratch.touched) {
          const auto v = static_cast<std::size_t>(tv);
          const Dist d = scratch.cur[v] * sc.q;
          if (d < row_d[v]) {
            row_d[v] = d;
            row_p[v] = scratch.cur_port[v];
          }
        }
        scratch.reset();
      }
      row_virgin = false;
      if (si == 0) outcomes0.push_back(run);
      w.max_iterations = std::max(w.max_iterations, run.iterations);
      // Early exit: an untruncated, fully converged exact-quantum sweep is
      // the complete d^(B); coarser scales can never improve on it.
      if (sc.q == 1 && !run.truncated && run.iterations < hop_bound) break;
    }
    if (row_virgin) reset_row();  // no scale executed (impossible today,
                                  // but the sink contract is a full row)
    sink(static_cast<int>(si), {row_d, n}, {row_p, n});
  });

  // Serial fold: the round charge per scale source 0 executed — the
  // pipelined schedule runs all sources of one scale together, so each
  // charge is |S| + hop layers + D — plus the iteration maximum.
  for (const SweepOutcome& run : outcomes0) {
    out.round_cost +=
        static_cast<std::int64_t>(sources.size()) +
        std::min<std::int64_t>(hop_bound, std::max(1, run.iterations)) +
        2 * static_cast<std::int64_t>(bfs_height);
    ++out.executed_scales;
  }
  for (const Worker& w : workers) {
    out.max_iterations = std::max(out.max_iterations, w.max_iterations);
  }
  return out;
}

SourceDetectionResult source_detection(
    const graph::WeightedGraph& g, const std::vector<Vertex>& sources,
    std::int64_t hop_bound, const util::Epsilon& eps, int bfs_height,
    int threads) {
  const auto n = static_cast<std::size_t>(g.n());
  SourceDetectionResult out;
  out.n_ = n;
  out.sources = sources;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.source_index[sources[i]] = static_cast<int>(i);
  }
  out.dist.resize(sources.size() * n);
  out.parent_port.resize(sources.size() * n);
  const SourceDetectionStats stats = source_detection_stream(
      g, sources, hop_bound, eps, bfs_height, threads,
      [&](int si, std::span<const Dist> dist,
          std::span<const std::int32_t> port) {
        std::copy(dist.begin(), dist.end(),
                  out.dist.begin() + static_cast<std::ptrdiff_t>(
                                         static_cast<std::size_t>(si) * n));
        std::copy(port.begin(), port.end(),
                  out.parent_port.begin() +
                      static_cast<std::ptrdiff_t>(
                          static_cast<std::size_t>(si) * n));
      });
  out.round_cost = stats.round_cost;
  out.distinct_scales = stats.distinct_scales;
  out.executed_scales = stats.executed_scales;
  out.max_iterations = stats.max_iterations;
  return out;
}

}  // namespace nors::primitives
