#include "primitives/cluster_bf.h"

#include <deque>

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

class ClusterBfProgram : public congest::NodeProgram {
 public:
  ClusterBfProgram(const graph::WeightedGraph& g,
                   const std::vector<Vertex>& roots, const AdmitFn& admit)
      : g_(g), admit_(admit), roots_(roots) {
    entries_.resize(static_cast<std::size_t>(g.n()));
    outbox_.resize(static_cast<std::size_t>(g.n()));
    queued_.resize(static_cast<std::size_t>(g.n()));
    root_slot_.assign(static_cast<std::size_t>(g.n()), -1);
    for (std::size_t s = 0; s < roots.size(); ++s) {
      const Vertex u = roots[s];
      NORS_CHECK_MSG(root_slot_[static_cast<std::size_t>(u)] < 0,
                     "duplicate root " << u);
      root_slot_[static_cast<std::size_t>(u)] = static_cast<int>(s);
      entries_[static_cast<std::size_t>(u)].push_back(
          {static_cast<int>(s), ClusterEntry{0, graph::kNoVertex,
                                             graph::kNoPort}});
      push_announce(u, 0);
    }
  }

  void begin(congest::Network& net) override {
    for (std::size_t v = 0; v < outbox_.size(); ++v) {
      if (!outbox_[v].empty()) net.wake(static_cast<Vertex>(v));
    }
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    const auto vi = static_cast<std::size_t>(v);
    auto& list = entries_[vi];
    for (const auto& m : inbox) {
      const Vertex root = static_cast<Vertex>(m.w[0]);
      const Dist d = m.w[1];
      const int slot = root_slot_[static_cast<std::size_t>(root)];
      // Linear scan: a vertex belongs to Õ(n^{1/k}) clusters whp (Claim 2).
      int at = -1;
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].first == slot) {
          at = static_cast<int>(i);
          break;
        }
      }
      const Dist current =
          at < 0 ? graph::kDistInf
                 : list[static_cast<std::size_t>(at)].second.dist;
      if (d >= current) continue;
      if (v != root && !admit_(v, root, d)) continue;
      if (at < 0) {
        at = static_cast<int>(list.size());
        list.push_back({slot, ClusterEntry{}});
      }
      auto& e = list[static_cast<std::size_t>(at)].second;
      e.dist = d;
      e.parent = m.from;
      e.parent_port = m.arrival_port;
      push_announce(v, at);
    }
    // Flush one announcement per neighbor edge per round; the network's
    // per-edge capacity queues any burst beyond that, so congestion from
    // overlapping clusters is borne by the link queues exactly as in the
    // model. We emit the *current* best distance at send time, so a stale
    // queued announcement is upgraded rather than re-sent.
    auto& queue = outbox_[vi];
    if (!queue.empty()) {
      const int at = queue.front();
      queue.pop_front();
      auto& entry = list[static_cast<std::size_t>(at)];
      queued_flag(vi, at) = 0;
      const Vertex root = roots_[static_cast<std::size_t>(entry.first)];
      const Dist d = entry.second.dist;
      // One prebuilt message, retargeted per port (the make() path would
      // re-validate and re-fill the payload 2m times per announcement wave).
      congest::Message m = congest::Message::make(0, {root, 0});
      std::int32_t p = 0;
      for (const auto& e : g_.neighbors(v)) {
        m.w[1] = d + e.w;
        out.send(p++, m);
      }
      if (!queue.empty()) out.wake_self();
    }
  }

  std::vector<std::vector<std::pair<int, ClusterEntry>>> entries_;

 private:
  /// Queued-ness of entries_[v][at]: one byte per local entry, parallel to
  /// entries_[v] (grown on demand).
  char& queued_flag(std::size_t vi, int at) {
    auto& q = queued_[vi];
    if (q.size() <= static_cast<std::size_t>(at)) {
      q.resize(static_cast<std::size_t>(at) + 1, 0);
    }
    return q[static_cast<std::size_t>(at)];
  }

  void push_announce(Vertex v, int at) {
    const auto vi = static_cast<std::size_t>(v);
    char& f = queued_flag(vi, at);
    if (f == 0) {
      f = 1;
      outbox_[vi].push_back(at);
    }
  }

  const graph::WeightedGraph& g_;
  const AdmitFn& admit_;
  const std::vector<Vertex>& roots_;
  std::vector<int> root_slot_;  // graph vertex -> dense slot, or -1
  // outbox_[v]: indices into entries_[v] queued for announcement; the flag
  // dedups so an entry improved twice before sending is announced once,
  // with the freshest distance.
  std::vector<std::deque<int>> outbox_;
  std::vector<std::vector<char>> queued_;
};

}  // namespace

ClusterBfResult distributed_cluster_bellman_ford(
    const graph::WeightedGraph& g, const std::vector<Vertex>& roots,
    const AdmitFn& admit, int edge_capacity) {
  ClusterBfProgram prog(g, roots, admit);
  congest::Network net(g, {.edge_capacity = edge_capacity});
  const auto stats = net.run(prog);
  ClusterBfResult r;
  r.roots = roots;
  r.entries = std::move(prog.entries_);
  r.rounds = stats.rounds;
  r.messages = stats.messages_sent;
  r.max_link_backlog = stats.max_link_backlog;
  return r;
}

}  // namespace nors::primitives
