#include "primitives/cluster_bf.h"

#include <cstring>

#include "util/arena.h"

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

/// One membership record: the cluster entry plus its announcement-queue
/// link (next_q chains the owning vertex's pending announcements by local
/// index; kNotQueued when idle).
struct Entry {
  std::int32_t slot = -1;   // dense root slot
  std::int32_t next_q = 0;  // queue link (see constants below)
  ClusterEntry rec;
};

constexpr std::int32_t kNotQueued = -2;  // next_q: not in the queue
constexpr std::int32_t kQueueTail = -1;  // next_q: queued, last in line

class ClusterBfProgram : public congest::NodeProgram {
 public:
  ClusterBfProgram(const graph::WeightedGraph& g,
                   const std::vector<Vertex>& roots, const AdmitFn& admit)
      : g_(g), admit_(admit), roots_(roots) {
    const auto n = static_cast<std::size_t>(g.n());
    list_.assign_fill(n, List{});
    q_head_.assign_fill(n, -1);
    q_tail_.assign_fill(n, -1);
    root_slot_.assign_fill(n, -1);
    for (std::size_t s = 0; s < roots.size(); ++s) {
      const Vertex u = roots[s];
      NORS_CHECK_MSG(root_slot_[static_cast<std::size_t>(u)] < 0,
                     "duplicate root " << u);
      root_slot_[static_cast<std::size_t>(u)] = static_cast<int>(s);
      const std::int32_t at = append_entry(
          u, static_cast<std::int32_t>(s),
          ClusterEntry{0, graph::kNoVertex, graph::kNoPort});
      push_announce(u, at);
    }
  }

  void begin(congest::Network& net) override {
    const auto n = static_cast<std::size_t>(g_.n());
    for (std::size_t v = 0; v < n; ++v) {
      if (q_head_[v] >= 0) net.wake(static_cast<Vertex>(v));
    }
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    const auto vi = static_cast<std::size_t>(v);
    List& list = list_[vi];
    for (const auto& m : inbox) {
      const Vertex root = static_cast<Vertex>(m.w[0]);
      const Dist d = m.w[1];
      const std::int32_t slot = root_slot_[static_cast<std::size_t>(root)];
      // Linear scan of v's contiguous entry block: a vertex belongs to
      // Õ(n^{1/k}) clusters whp (Claim 2), so a short scan beats hashing.
      std::int32_t at = -1;
      for (std::int32_t i = 0; i < list.cnt; ++i) {
        if (list.ptr[i].slot == slot) {
          at = i;
          break;
        }
      }
      const Dist current =
          at < 0 ? graph::kDistInf
                 : list.ptr[at].rec.dist;
      if (d >= current) continue;
      if (v != root && !admit_(v, root, d)) continue;
      if (at < 0) at = append_entry(v, slot, ClusterEntry{});
      auto& e = list_[vi].ptr[at].rec;
      e.dist = d;
      e.parent = m.from;
      e.parent_port = m.arrival_port;
      push_announce(v, at);
    }
    // Flush one announcement per neighbor edge per round; the network's
    // per-edge capacity queues any burst beyond that, so congestion from
    // overlapping clusters is borne by the link queues exactly as in the
    // model. We emit the *current* best distance at send time, so a stale
    // queued announcement is upgraded rather than re-sent.
    const std::int32_t at = q_head_[vi];
    if (at >= 0) {
      Entry& entry = list_[vi].ptr[at];
      q_head_[vi] = entry.next_q == kQueueTail ? -1 : entry.next_q;
      if (q_head_[vi] < 0) q_tail_[vi] = -1;
      entry.next_q = kNotQueued;
      const Vertex root = roots_[static_cast<std::size_t>(entry.slot)];
      const Dist d = entry.rec.dist;
      // One prebuilt message, retargeted per port (the make() path would
      // re-validate and re-fill the payload 2m times per announcement wave).
      congest::Message m = congest::Message::make(0, {root, 0});
      std::int32_t p = 0;
      for (const auto& e : g_.neighbors(v)) {
        m.w[1] = d + e.w;
        out.send(p++, m);
      }
      if (q_head_[vi] >= 0) out.wake_self();
    }
  }

  /// Flattens the per-vertex blocks into the CSR result (join order within
  /// each vertex = block order).
  void flatten(ClusterBfResult& r) const {
    const auto n = static_cast<std::size_t>(g_.n());
    r.off.assign(n + 1, 0);
    std::size_t total = 0;
    for (std::size_t v = 0; v < n; ++v) {
      r.off[v] = total;
      total += static_cast<std::size_t>(list_[v].cnt);
    }
    r.off[n] = total;
    r.slot.resize(total);
    r.rec.resize(total);
    std::size_t w = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const List& list = list_[v];
      for (std::int32_t i = 0; i < list.cnt; ++i, ++w) {
        r.slot[w] = list.ptr[i].slot;
        r.rec[w] = list.ptr[i].rec;
      }
    }
  }

 private:
  /// Per-vertex contiguous entry block in the arena; doubled in place on
  /// growth (the superseded block stays arena garbage until reset — bounded
  /// by 2× the final footprint and recycled with the pool).
  struct List {
    Entry* ptr = nullptr;
    std::int32_t cnt = 0;
    std::int32_t cap = 0;
  };

  std::int32_t append_entry(Vertex v, std::int32_t slot,
                            const ClusterEntry& rec) {
    List& list = list_[static_cast<std::size_t>(v)];
    if (list.cnt == list.cap) {
      const std::int32_t cap = std::max<std::int32_t>(4, 2 * list.cap);
      Entry* bigger = arena_.alloc<Entry>(static_cast<std::size_t>(cap));
      if (list.cnt > 0) {
        std::memcpy(bigger, list.ptr,
                    static_cast<std::size_t>(list.cnt) * sizeof(Entry));
      }
      list.ptr = bigger;
      list.cap = cap;
    }
    const std::int32_t at = list.cnt++;
    list.ptr[at] = {slot, kNotQueued, rec};
    return at;
  }

  void push_announce(Vertex v, std::int32_t at) {
    const auto vi = static_cast<std::size_t>(v);
    Entry& e = list_[vi].ptr[at];
    if (e.next_q != kNotQueued) return;  // already queued: it will carry
                                         // the freshest distance at send
    e.next_q = kQueueTail;
    if (q_head_[vi] < 0) {
      q_head_[vi] = at;
    } else {
      list_[vi].ptr[q_tail_[vi]].next_q = at;
    }
    q_tail_[vi] = at;
  }

  const graph::WeightedGraph& g_;
  const AdmitFn& admit_;
  const std::vector<Vertex>& roots_;
  util::Arena arena_;  // entry blocks
  util::PooledBuf<std::int32_t> root_slot_;  // graph vertex -> slot, or -1
  util::PooledBuf<List> list_;               // per-vertex entry block
  util::PooledBuf<std::int32_t> q_head_, q_tail_;  // per-vertex queue, by
                                                   // local entry index
};

}  // namespace

ClusterBfResult distributed_cluster_bellman_ford(
    const graph::WeightedGraph& g, const std::vector<Vertex>& roots,
    const AdmitFn& admit, int edge_capacity) {
  ClusterBfProgram prog(g, roots, admit);
  congest::Network net(g, {.edge_capacity = edge_capacity});
  const auto stats = net.run(prog);
  ClusterBfResult r;
  r.roots = roots;
  prog.flatten(r);
  r.rounds = stats.rounds;
  r.messages = stats.messages_sent;
  r.max_link_backlog = stats.max_link_backlog;
  return r;
}

}  // namespace nors::primitives
