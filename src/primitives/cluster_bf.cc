#include "primitives/cluster_bf.h"

#include <deque>
#include <unordered_set>

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

class ClusterBfProgram : public congest::NodeProgram {
 public:
  ClusterBfProgram(const graph::WeightedGraph& g,
                   const std::vector<Vertex>& roots, const AdmitFn& admit)
      : g_(g), admit_(admit) {
    entries_.resize(static_cast<std::size_t>(g.n()));
    outbox_.resize(static_cast<std::size_t>(g.n()));
    queued_flag_.resize(static_cast<std::size_t>(g.n()));
    for (Vertex u : roots) {
      auto& e = entries_[static_cast<std::size_t>(u)][u];
      e.dist = 0;
      push_announce(u, u);
    }
  }

  void begin(congest::Network& net) override {
    for (std::size_t v = 0; v < outbox_.size(); ++v) {
      if (!outbox_[v].empty()) net.wake(static_cast<Vertex>(v));
    }
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    const auto vi = static_cast<std::size_t>(v);
    for (const auto& m : inbox) {
      const Vertex root = static_cast<Vertex>(m.w[0]);
      const Dist d = m.w[1];
      auto it = entries_[vi].find(root);
      const Dist current =
          (it == entries_[vi].end()) ? graph::kDistInf : it->second.dist;
      if (d >= current) continue;
      if (v != root && !admit_(v, root, d)) continue;
      auto& e = entries_[vi][root];
      e.dist = d;
      e.parent = m.from;
      e.parent_port = m.arrival_port;
      push_announce(v, root);
    }
    // Flush one announcement per neighbor edge per round; the network's
    // per-edge capacity queues any burst beyond that, so congestion from
    // overlapping clusters is borne by the link queues exactly as in the
    // model. We emit the *current* best distance at send time, so a stale
    // queued announcement is upgraded rather than re-sent.
    auto& queue = outbox_[vi];
    if (!queue.empty()) {
      const Vertex root = queue.front();
      queue.pop_front();
      queued_flag_[vi].erase(root);
      const Dist d = entries_[vi][root].dist;
      std::int32_t p = 0;
      for (const auto& e : g_.neighbors(v)) {
        out.send(p++, congest::Message::make(0, {root, d + e.w}));
      }
      if (!queue.empty()) out.wake_self();
    }
  }

  std::vector<std::unordered_map<Vertex, ClusterEntry>> entries_;

 private:
  void push_announce(Vertex v, Vertex root) {
    const auto vi = static_cast<std::size_t>(v);
    if (queued_flag_[vi].insert(root).second) {
      outbox_[vi].push_back(root);
    }
  }

  const graph::WeightedGraph& g_;
  const AdmitFn& admit_;
  std::vector<std::deque<Vertex>> outbox_;
  // Roots currently queued in outbox_[v]: dedup so an entry improved twice
  // before sending is announced once, with the freshest distance.
  std::vector<std::unordered_set<Vertex>> queued_flag_;
};

}  // namespace

ClusterBfResult distributed_cluster_bellman_ford(
    const graph::WeightedGraph& g, const std::vector<Vertex>& roots,
    const AdmitFn& admit, int edge_capacity) {
  ClusterBfProgram prog(g, roots, admit);
  congest::Network net(g, {.edge_capacity = edge_capacity});
  const auto stats = net.run(prog);
  ClusterBfResult r;
  r.entries = std::move(prog.entries_);
  r.rounds = stats.rounds;
  r.messages = stats.messages_sent;
  r.max_link_backlog = stats.max_link_backlog;
  return r;
}

}  // namespace nors::primitives
