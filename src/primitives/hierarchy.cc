#include "primitives/hierarchy.h"

#include <cmath>

namespace nors::primitives {

Hierarchy Hierarchy::sample(int n, int k, util::Rng& rng) {
  NORS_CHECK(n >= 1 && k >= 1);
  const double p = std::pow(static_cast<double>(n), -1.0 / k);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Hierarchy h;
    h.k_ = k;
    h.level_.assign(static_cast<std::size_t>(n), 0);
    for (graph::Vertex v = 0; v < n; ++v) {
      int lvl = 0;
      while (lvl < k - 1 && rng.bernoulli(p)) ++lvl;
      h.level_[static_cast<std::size_t>(v)] = lvl;
    }
    h.sets_.assign(static_cast<std::size_t>(k) + 1, {});
    for (graph::Vertex v = 0; v < n; ++v) {
      for (int i = 0; i <= h.level_[static_cast<std::size_t>(v)]; ++i) {
        h.sets_[static_cast<std::size_t>(i)].push_back(v);
      }
    }
    if (!h.sets_[static_cast<std::size_t>(k) - 1].empty()) return h;
  }
  NORS_CHECK_MSG(false, "could not sample a hierarchy with non-empty A_{k-1}");
}

const std::vector<graph::Vertex>& Hierarchy::set_at(int i) const {
  NORS_CHECK(i >= 0 && i <= k_);
  return sets_[static_cast<std::size_t>(i)];
}

std::vector<graph::Vertex> Hierarchy::exactly_at(int i) const {
  NORS_CHECK(i >= 0 && i < k_);
  std::vector<graph::Vertex> out;
  for (graph::Vertex v : sets_[static_cast<std::size_t>(i)]) {
    if (level(v) == i) out.push_back(v);
  }
  return out;
}

}  // namespace nors::primitives
