#pragma once

#include <vector>

#include "congest/network.h"
#include "graph/graph.h"

namespace nors::primitives {

/// Distance to the nearest vertex of a source set (exact pivots, paper §3.1
/// "Computing Pivots", small levels). Runs weighted Bellman–Ford rooted at
/// the set, message by message on the CONGEST simulator: every improvement
/// of (distance to the set, witnessing source) is re-announced to all
/// neighbors, subject to the one-message-per-edge-per-round constraint.
///
/// `rounds` is the real simulated round count. By Claim 3 the exploration
/// reaches exact distances within 4·n^{i/k}·ln n hops whp; running to
/// quiescence yields exact values regardless.
struct SetBfResult {
  std::vector<graph::Dist> dist;       // d_G(v, A)
  std::vector<graph::Vertex> source;   // the pivot: nearest A-vertex
  std::vector<graph::Vertex> parent;   // next hop toward the pivot
  std::vector<std::int32_t> parent_port;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
};

SetBfResult distributed_set_bellman_ford(const graph::WeightedGraph& g,
                                         const std::vector<graph::Vertex>& set,
                                         int edge_capacity = 1);

}  // namespace nors::primitives
