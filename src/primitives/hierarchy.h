#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace nors::primitives {

/// The Thorup–Zwick sampling hierarchy V = A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}, A_k = ∅
/// (paper §3). Each vertex of A_{i-1} enters A_i independently with
/// probability n^{-1/k}. Resampled (with a fresh stream) until A_{k-1} is
/// non-empty — the paper conditions on this whp event.
class Hierarchy {
 public:
  /// Sample for a graph on n vertices with parameter k ≥ 1.
  static Hierarchy sample(int n, int k, util::Rng& rng);

  int k() const { return k_; }

  /// Highest index i such that v ∈ A_i (0 ≤ level < k).
  int level(graph::Vertex v) const {
    return level_[static_cast<std::size_t>(v)];
  }

  /// Members of A_i, ascending. A_0 is every vertex; set_at(k) is empty.
  const std::vector<graph::Vertex>& set_at(int i) const;

  /// Members of A_i \ A_{i+1}: the roots whose clusters live at level i.
  std::vector<graph::Vertex> exactly_at(int i) const;

  bool in_set(graph::Vertex v, int i) const {
    return i <= level(v);
  }

 private:
  int k_ = 0;
  std::vector<int> level_;
  std::vector<std::vector<graph::Vertex>> sets_;  // sets_[i] = A_i, i=0..k
};

}  // namespace nors::primitives
