#include "primitives/set_bf.h"

namespace nors::primitives {

namespace {

using graph::Dist;
using graph::Vertex;

class SetBfProgram : public congest::NodeProgram {
 public:
  SetBfProgram(int n, const std::vector<Vertex>& set) {
    dist_.assign(static_cast<std::size_t>(n), graph::kDistInf);
    source_.assign(static_cast<std::size_t>(n), graph::kNoVertex);
    parent_.assign(static_cast<std::size_t>(n), graph::kNoVertex);
    parent_port_.assign(static_cast<std::size_t>(n), graph::kNoPort);
    dirty_.assign(static_cast<std::size_t>(n), 0);
    for (Vertex s : set) {
      dist_[static_cast<std::size_t>(s)] = 0;
      source_[static_cast<std::size_t>(s)] = s;
      dirty_[static_cast<std::size_t>(s)] = 1;
    }
  }

  void begin(congest::Network& net) override {
    for (std::size_t v = 0; v < dirty_.size(); ++v) {
      if (dirty_[v]) net.wake(static_cast<Vertex>(v));
    }
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    const auto vi = static_cast<std::size_t>(v);
    for (const auto& m : inbox) {
      const Dist d = m.w[0];
      const Vertex src = static_cast<Vertex>(m.w[1]);
      // Tie-break on source id so the assignment is deterministic.
      if (d < dist_[vi] || (d == dist_[vi] && src < source_[vi])) {
        dist_[vi] = d;
        source_[vi] = src;
        parent_[vi] = m.from;
        parent_port_[vi] = m.arrival_port;
        dirty_[vi] = 1;
      }
    }
    if (dirty_[vi]) {
      dirty_[vi] = 0;
      // Announce (dist + w(v,u), source) to each neighbor u. The neighbor
      // adds nothing: sending the incremented value keeps messages at two
      // words and matches "the name of the vertex in A_i and the current
      // distance to it" (paper §3.1).
      std::int32_t p = 0;
      for (const auto& e : net_->graph().neighbors(v)) {
        out.send(p++, congest::Message::make(
                          0, {dist_[vi] + e.w, source_[vi]}));
      }
    }
  }

  void attach(congest::Network& net) { net_ = &net; }

  std::vector<Dist> dist_;
  std::vector<Vertex> source_;
  std::vector<Vertex> parent_;
  std::vector<std::int32_t> parent_port_;
  std::vector<char> dirty_;

 private:
  congest::Network* net_ = nullptr;
};

}  // namespace

SetBfResult distributed_set_bellman_ford(const graph::WeightedGraph& g,
                                         const std::vector<Vertex>& set,
                                         int edge_capacity) {
  NORS_CHECK_MSG(!set.empty(), "source set must be non-empty");
  SetBfProgram prog(g.n(), set);
  congest::Network net(g, {.edge_capacity = edge_capacity});
  prog.attach(net);
  const auto stats = net.run(prog);
  SetBfResult r;
  r.dist = std::move(prog.dist_);
  r.source = std::move(prog.source_);
  r.parent = std::move(prog.parent_);
  r.parent_port = std::move(prog.parent_port_);
  r.rounds = stats.rounds;
  r.messages = stats.messages_sent;
  return r;
}

}  // namespace nors::primitives
