#pragma once

#include <functional>
#include <vector>

#include "congest/network.h"
#include "graph/graph.h"

namespace nors::primitives {

/// One vertex's membership record in one root's exploration.
struct ClusterEntry {
  graph::Dist dist = graph::kDistInf;      // b_v(u)
  graph::Vertex parent = graph::kNoVertex; // tree parent (real graph edge)
  std::int32_t parent_port = graph::kNoPort;
};

/// Multi-root bounded Bellman–Ford explorations run concurrently on the
/// CONGEST simulator (paper §3.2 "Building the Small Trees"). Every root u
/// starts an exploration; a vertex v that hears (u, b) joins u's cluster iff
/// admit(v, u, b) holds, stores its parent, and forwards. Congestion is
/// real: each directed edge carries `edge_capacity` messages per round, so
/// the measured `rounds` reflects the Õ(n^{1/k}) per-iteration overlap
/// congestion the paper analyses via Claim 2.
///
/// Roots are identified by a dense slot id (their index in the input root
/// list). Membership records come back as one CSR over vertices — per
/// vertex, its (root slot, record) pairs in join order — flattened from the
/// program's arena-chunked per-vertex lists (DESIGN.md §9), so the result
/// is three flat arrays rather than n heap vectors.
struct ClusterBfResult {
  std::vector<graph::Vertex> roots;  // slot -> root vertex (input order)
  // CSR by vertex: v's records are (slot[e], rec[e]) for
  // e in [off[v], off[v+1]), in join order.
  std::vector<std::size_t> off;        // n+1
  std::vector<std::int32_t> slot;      // root slot per record
  std::vector<ClusterEntry> rec;       // parallel to slot
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t max_link_backlog = 0;

  std::size_t entry_count(graph::Vertex v) const {
    return off[static_cast<std::size_t>(v) + 1] -
           off[static_cast<std::size_t>(v)];
  }
};

/// admit(v, root, dist): may v join root's cluster at this distance?
/// Roots always hold their own entry with dist 0 (admit is not consulted).
using AdmitFn =
    std::function<bool(graph::Vertex v, graph::Vertex root, graph::Dist d)>;

ClusterBfResult distributed_cluster_bellman_ford(
    const graph::WeightedGraph& g, const std::vector<graph::Vertex>& roots,
    const AdmitFn& admit, int edge_capacity = 1);

}  // namespace nors::primitives
