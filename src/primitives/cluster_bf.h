#pragma once

#include <functional>
#include <vector>

#include "congest/network.h"
#include "graph/graph.h"

namespace nors::primitives {

/// One vertex's membership record in one root's exploration.
struct ClusterEntry {
  graph::Dist dist = graph::kDistInf;      // b_v(u)
  graph::Vertex parent = graph::kNoVertex; // tree parent (real graph edge)
  std::int32_t parent_port = graph::kNoPort;
};

/// Multi-root bounded Bellman–Ford explorations run concurrently on the
/// CONGEST simulator (paper §3.2 "Building the Small Trees"). Every root u
/// starts an exploration; a vertex v that hears (u, b) joins u's cluster iff
/// admit(v, u, b) holds, stores its parent, and forwards. Congestion is
/// real: each directed edge carries `edge_capacity` messages per round, so
/// the measured `rounds` reflects the Õ(n^{1/k}) per-iteration overlap
/// congestion the paper analyses via Claim 2.
///
/// Roots are identified by a dense slot id (their index in the input root
/// list); per-vertex state is a short flat list of (slot, record) pairs —
/// cluster overlap is Õ(n^{1/k}) whp, so a linear scan beats hashing.
struct ClusterBfResult {
  std::vector<graph::Vertex> roots;  // slot -> root vertex (input order)
  // entries[v]: (root slot, membership record), in join order.
  std::vector<std::vector<std::pair<int, ClusterEntry>>> entries;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t max_link_backlog = 0;
};

/// admit(v, root, dist): may v join root's cluster at this distance?
/// Roots always hold their own entry with dist 0 (admit is not consulted).
using AdmitFn =
    std::function<bool(graph::Vertex v, graph::Vertex root, graph::Dist d)>;

ClusterBfResult distributed_cluster_bellman_ford(
    const graph::WeightedGraph& g, const std::vector<graph::Vertex>& roots,
    const AdmitFn& admit, int edge_capacity = 1);

}  // namespace nors::primitives
