#include "primitives/bfs_tree.h"

#include <algorithm>
#include <queue>

namespace nors::primitives {

namespace {

using graph::Vertex;

/// Flooding BFS: the root announces depth 0; every vertex adopts the first
/// announcement it hears (smallest sender id among the first round's
/// arrivals, for determinism) and re-announces depth+1.
class BfsProgram : public congest::NodeProgram {
 public:
  BfsProgram(int n, Vertex root) : root_(root) {
    parent_.assign(static_cast<std::size_t>(n), graph::kNoVertex);
    parent_port_.assign(static_cast<std::size_t>(n), graph::kNoPort);
    depth_.assign(static_cast<std::size_t>(n), -1);
  }

  void begin(congest::Network& net) override {
    depth_[static_cast<std::size_t>(root_)] = 0;
    net.wake(root_);
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    if (depth_[static_cast<std::size_t>(v)] == -1) {
      // Adopt the announcement with the smallest (depth, sender) pair.
      const congest::Message* best = nullptr;
      for (const auto& m : inbox) {
        if (best == nullptr || m.w[0] < best->w[0] ||
            (m.w[0] == best->w[0] && m.from < best->from)) {
          best = &m;
        }
      }
      if (best == nullptr) return;
      depth_[static_cast<std::size_t>(v)] =
          static_cast<int>(best->w[0]) + 1;
      parent_[static_cast<std::size_t>(v)] = best->from;
      parent_port_[static_cast<std::size_t>(v)] = best->arrival_port;
      out.send_all(congest::Message::make(
          0, {depth_[static_cast<std::size_t>(v)]}));
    } else if (v == root_ && !announced_) {
      announced_ = true;
      out.send_all(congest::Message::make(0, {0}));
    }
  }

  Vertex root_;
  std::vector<Vertex> parent_;
  std::vector<std::int32_t> parent_port_;
  std::vector<int> depth_;
  bool announced_ = false;
};

BfsTree finish(const graph::WeightedGraph& g, Vertex root,
               std::vector<Vertex> parent, std::vector<std::int32_t> ports,
               std::vector<int> depth, std::int64_t rounds) {
  BfsTree t;
  t.root = root;
  t.parent = std::move(parent);
  t.parent_port = std::move(ports);
  t.depth = std::move(depth);
  t.children.assign(static_cast<std::size_t>(g.n()), {});
  for (Vertex v = 0; v < g.n(); ++v) {
    NORS_CHECK_MSG(t.depth[static_cast<std::size_t>(v)] >= 0,
                   "graph must be connected to build a BFS tree");
    t.height = std::max(t.height, t.depth[static_cast<std::size_t>(v)]);
    const Vertex p = t.parent[static_cast<std::size_t>(v)];
    if (p != graph::kNoVertex) {
      t.children[static_cast<std::size_t>(p)].push_back(v);
    }
  }
  t.construction_rounds = rounds;
  return t;
}

}  // namespace

BfsTree distributed_bfs_tree(const graph::WeightedGraph& g, Vertex root) {
  NORS_CHECK(g.valid_vertex(root));
  BfsProgram prog(g.n(), root);
  congest::Network net(g, {});
  const congest::NetworkStats stats = net.run(prog);
  return finish(g, root, std::move(prog.parent_), std::move(prog.parent_port_),
                std::move(prog.depth_), stats.rounds);
}

BfsTree centralized_bfs_tree(const graph::WeightedGraph& g, Vertex root) {
  NORS_CHECK(g.valid_vertex(root));
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<Vertex> parent(n, graph::kNoVertex);
  std::vector<std::int32_t> ports(n, graph::kNoPort);
  std::vector<int> depth(n, -1);
  std::queue<Vertex> q;
  depth[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const auto& e : g.neighbors(v)) {
      if (depth[static_cast<std::size_t>(e.to)] == -1) {
        depth[static_cast<std::size_t>(e.to)] =
            depth[static_cast<std::size_t>(v)] + 1;
        parent[static_cast<std::size_t>(e.to)] = v;
        ports[static_cast<std::size_t>(e.to)] = e.rev;
        q.push(e.to);
      }
    }
  }
  return finish(g, root, std::move(parent), std::move(ports),
                std::move(depth), /*rounds=*/0);
}

}  // namespace nors::primitives
