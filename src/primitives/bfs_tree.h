#pragma once

#include <vector>

#include "congest/network.h"
#include "graph/graph.h"

namespace nors::primitives {

/// A rooted BFS tree of the network. Used as the broadcast/convergecast
/// backbone (paper Lemma 1); `height` is the D-like term in pipelined costs.
struct BfsTree {
  graph::Vertex root = graph::kNoVertex;
  std::vector<graph::Vertex> parent;        // kNoVertex at root
  std::vector<std::int32_t> parent_port;    // port at v toward parent
  std::vector<int> depth;                   // hops from root
  std::vector<std::vector<graph::Vertex>> children;
  int height = 0;
  std::int64_t construction_rounds = 0;  // simulated rounds to build it
};

/// Builds a BFS tree by running the flooding algorithm on the CONGEST
/// simulator (construction_rounds is the real measured count, Θ(D)).
BfsTree distributed_bfs_tree(const graph::WeightedGraph& g,
                             graph::Vertex root);

/// Same tree shape computed centrally (for tests and for callers that have
/// already paid for the tree).
BfsTree centralized_bfs_tree(const graph::WeightedGraph& g,
                             graph::Vertex root);

}  // namespace nors::primitives
