#include "primitives/pipelined.h"

#include <deque>
#include <unordered_map>

namespace nors::primitives {

namespace {

using graph::Vertex;

/// Upcast tokens to the root along tree edges, then broadcast each token
/// back down the whole tree. One token per edge per round (CONGEST).
class PipelineProgram : public congest::NodeProgram {
 public:
  PipelineProgram(const graph::WeightedGraph& g, const BfsTree& tree,
                  const std::vector<int>& tokens)
      : tree_(tree) {
    const auto n = tree.parent.size();
    up_queue_.resize(n);
    down_queue_.resize(n);
    received_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (int t = 0; t < tokens[v]; ++t) {
        up_queue_[v].push_back(static_cast<std::int64_t>(v));
      }
    }
    // (parent, child) -> port at parent, recovered from the child's
    // parent_port through the graph.
    for (Vertex v = 0; v < g.n(); ++v) {
      const Vertex p = tree.parent[static_cast<std::size_t>(v)];
      if (p == graph::kNoVertex) continue;
      const std::int32_t port_at_parent =
          g.edge(v, tree.parent_port[static_cast<std::size_t>(v)]).rev;
      child_port_[pack(p, v)] = port_at_parent;
    }
  }

  void begin(congest::Network& net) override {
    for (std::size_t v = 0; v < up_queue_.size(); ++v) {
      if (!up_queue_[v].empty()) net.wake(static_cast<Vertex>(v));
    }
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    auto& up = up_queue_[static_cast<std::size_t>(v)];
    auto& down = down_queue_[static_cast<std::size_t>(v)];
    for (const auto& m : inbox) {
      if (m.tag == kUp) {
        if (v == tree_.root) {
          down.push_back(m.w[0]);
        } else {
          up.push_back(m.w[0]);
        }
      } else {
        ++received_[static_cast<std::size_t>(v)];
        down.push_back(m.w[0]);
      }
    }
    if (v == tree_.root && !up.empty()) {
      // The root's own tokens skip the up phase.
      for (std::int64_t t : up) down.push_back(t);
      up.clear();
    }
    bool more = false;
    if (!up.empty()) {
      out.send(tree_.parent_port[static_cast<std::size_t>(v)],
               congest::Message::make(kUp, {up.front()}));
      up.pop_front();
      more = more || !up.empty();
    }
    if (!down.empty()) {
      const std::int64_t t = down.front();
      down.pop_front();
      for (Vertex c : tree_.children[static_cast<std::size_t>(v)]) {
        out.send(child_port_.at(pack(v, c)),
                 congest::Message::make(kDown, {t}));
      }
      more = more || !down.empty();
    }
    if (more) out.wake_self();
  }

  std::int64_t received(Vertex v) const {
    return received_[static_cast<std::size_t>(v)];
  }

 private:
  static constexpr std::uint16_t kUp = 1;
  static constexpr std::uint16_t kDown = 2;

  static std::int64_t pack(Vertex a, Vertex b) {
    return (static_cast<std::int64_t>(a) << 32) |
           static_cast<std::uint32_t>(b);
  }

  const BfsTree& tree_;
  std::vector<std::deque<std::int64_t>> up_queue_;
  std::vector<std::deque<std::int64_t>> down_queue_;
  std::vector<std::int64_t> received_;
  std::unordered_map<std::int64_t, std::int32_t> child_port_;
};

}  // namespace

std::int64_t pipelined_broadcast_rounds(std::int64_t messages, int height) {
  NORS_CHECK(messages >= 0 && height >= 0);
  if (messages == 0) return 0;
  return 2 * (static_cast<std::int64_t>(height) + messages);
}

std::int64_t simulate_pipelined_broadcast(const graph::WeightedGraph& g,
                                          const BfsTree& tree,
                                          const std::vector<int>& tokens) {
  NORS_CHECK(static_cast<int>(tokens.size()) == g.n());
  PipelineProgram prog(g, tree, tokens);
  congest::Network net(g, {});
  const auto stats = net.run(prog);
  // Sanity: every non-root vertex received every token.
  std::int64_t total = 0;
  for (int t : tokens) total += t;
  for (Vertex v = 0; v < g.n(); ++v) {
    if (v == tree.root) continue;
    NORS_CHECK_MSG(prog.received(v) == total,
                   "broadcast lost tokens at vertex " << v);
  }
  return stats.rounds;
}

}  // namespace nors::primitives
