#pragma once

#include <unordered_map>
#include <vector>

#include "congest/ledger.h"
#include "graph/graph.h"
#include "util/ratio.h"

namespace nors::primitives {

/// Multi-source hop-bounded (1+ε)-approximate distance computation — the
/// paper's Theorem 1 ([Nan14, Thm 3.6]). Every vertex u learns, for every
/// source v, a value d_uv with
///
///     d^(B)_G(u,v) ≤ d_uv ≤ (1+ε) d^(B)_G(u,v)                      (2)
///
/// and (Remark 1) a neighbor p = p_v(u) with d_uv ≥ w(u,p) + d_pv.    (3)
///
/// Implementation (DESIGN.md §2.3): the weight-rounding scheme underlying
/// [Nan14]. For each distance scale 2^s we quantize edge weights to
/// q_s = max(1, ⌊ε·2^s/(2B)⌋), run exact hop-bounded Bellman–Ford on the
/// quantized weights *truncated at the scale's window*
/// cap_s = ⌈2^s/q_s⌉ + B quantized units (the truncation is what bounds the
/// number of distance levels per scale in [Nan14] — and what makes the
/// output genuinely (1+ε)-approximate for large distances rather than
/// collapsing into one exact sweep), and take the minimum over scales.
/// Values satisfy (2)–(3) *exactly* (integer arithmetic throughout), and
/// are symmetric between sources (footnote 8): per-scale runs are
/// symmetric, and the early-exit below only fires once a scale is
/// exact-complete, which coarser scales cannot improve.
///
/// Round cost charged: per executed scale, |sources| + min(B, hop layers
/// used) + 2·bfs_height — the pipelined schedule of [Nan14] evaluated on
/// measured quantities. Scales stop early once an untruncated quantum-1
/// sweep has converged (its values are the complete exact d^(B)).
struct SourceDetectionResult {
  std::vector<graph::Vertex> sources;
  std::unordered_map<graph::Vertex, int> source_index;
  // Flattened [source_idx * n + v].
  std::vector<graph::Dist> dist;
  std::vector<std::int32_t> parent_port;  // port at v toward p_source(v)
  std::int64_t round_cost = 0;
  int distinct_scales = 0;  // scales in the schedule
  int executed_scales = 0;  // scales actually run (early exit)
  int max_iterations = 0;

  graph::Dist d(int si, graph::Vertex v) const {
    return dist[static_cast<std::size_t>(si) * n_ +
                static_cast<std::size_t>(v)];
  }
  std::int32_t port(int si, graph::Vertex v) const {
    return parent_port[static_cast<std::size_t>(si) * n_ +
                       static_cast<std::size_t>(v)];
  }
  /// Index of source vertex s, or -1.
  int index_of(graph::Vertex s) const {
    auto it = source_index.find(s);
    return it == source_index.end() ? -1 : it->second;
  }

  std::size_t n_ = 0;  // vertices per source row (set by the builder)
};

/// `threads`: worker threads for the per-source sweeps (sources are
/// independent — disjoint output rows, per-source bookkeeping — so any pool
/// size yields bit-identical results and round charges). 0 consults the
/// NORS_THREADS environment variable; 1 is serial.
SourceDetectionResult source_detection(const graph::WeightedGraph& g,
                                       const std::vector<graph::Vertex>& sources,
                                       std::int64_t hop_bound,
                                       const util::Epsilon& eps,
                                       int bfs_height, int threads = 0);

}  // namespace nors::primitives
