#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "congest/ledger.h"
#include "graph/graph.h"
#include "util/ratio.h"

namespace nors::primitives {

/// Multi-source hop-bounded (1+ε)-approximate distance computation — the
/// paper's Theorem 1 ([Nan14, Thm 3.6]). Every vertex u learns, for every
/// source v, a value d_uv with
///
///     d^(B)_G(u,v) ≤ d_uv ≤ (1+ε) d^(B)_G(u,v)                      (2)
///
/// and (Remark 1) a neighbor p = p_v(u) with d_uv ≥ w(u,p) + d_pv.    (3)
///
/// Implementation (DESIGN.md §2.3): the weight-rounding scheme underlying
/// [Nan14]. For each distance scale 2^s we quantize edge weights to
/// q_s = max(1, ⌊ε·2^s/(2B)⌋), run exact hop-bounded Bellman–Ford on the
/// quantized weights *truncated at the scale's window*
/// cap_s = ⌈2^s/q_s⌉ + B quantized units (the truncation is what bounds the
/// number of distance levels per scale in [Nan14] — and what makes the
/// output genuinely (1+ε)-approximate for large distances rather than
/// collapsing into one exact sweep), and take the minimum over scales.
/// Values satisfy (2)–(3) *exactly* (integer arithmetic throughout), and
/// are symmetric between sources (footnote 8): per-scale runs are
/// symmetric, and the early-exit below only fires once a scale is
/// exact-complete, which coarser scales cannot improve.
///
/// Round cost charged: per executed scale, |sources| + min(B, hop layers
/// used) + 2·bfs_height — the pipelined schedule of [Nan14] evaluated on
/// measured quantities. Scales stop early once an untruncated quantum-1
/// sweep has converged (its values are the complete exact d^(B)).

/// Measured quantities of one source-detection call (the ledger inputs).
struct SourceDetectionStats {
  std::int64_t round_cost = 0;
  int distinct_scales = 0;  // scales in the schedule
  int executed_scales = 0;  // scales actually run (early exit)
  int max_iterations = 0;
};

/// Streaming row consumer: called exactly once per source index with that
/// source's finalized distance/parent-port row (length n, min over scales).
/// Rows are produced source-major, so the |sources| × n slab is never
/// materialized — the row buffers recycle through the arena pool
/// (DESIGN.md §9). With threads > 1 the sink runs concurrently on distinct
/// source indices from pool workers; it must write only state owned by its
/// source index. Row contents are bit-identical to the slab-materializing
/// overload for every source regardless of the pool size or the execution
/// order (per-source sweeps are independent, and each source's scale
/// schedule depends only on its own outcomes).
using SourceRowSink =
    std::function<void(int si, std::span<const graph::Dist> dist,
                       std::span<const std::int32_t> parent_port)>;

SourceDetectionStats source_detection_stream(
    const graph::WeightedGraph& g, const std::vector<graph::Vertex>& sources,
    std::int64_t hop_bound, const util::Epsilon& eps, int bfs_height,
    int threads, const SourceRowSink& sink);

/// Slab-materializing result of source_detection() below — kept for callers
/// that genuinely need all-pairs access (the §3.3.1 preprocessing, whose
/// |V'| is Õ(n^{1/2}) at most). The construction's middle levels consume
/// rows through source_detection_stream instead.
struct SourceDetectionResult {
  std::vector<graph::Vertex> sources;
  std::unordered_map<graph::Vertex, int> source_index;
  // Flattened [source_idx * n + v].
  std::vector<graph::Dist> dist;
  std::vector<std::int32_t> parent_port;  // port at v toward p_source(v)
  std::int64_t round_cost = 0;
  int distinct_scales = 0;  // scales in the schedule
  int executed_scales = 0;  // scales actually run (early exit)
  int max_iterations = 0;

  graph::Dist d(int si, graph::Vertex v) const {
    return dist[static_cast<std::size_t>(si) * n_ +
                static_cast<std::size_t>(v)];
  }
  std::int32_t port(int si, graph::Vertex v) const {
    return parent_port[static_cast<std::size_t>(si) * n_ +
                       static_cast<std::size_t>(v)];
  }
  /// Index of source vertex s, or -1.
  int index_of(graph::Vertex s) const {
    auto it = source_index.find(s);
    return it == source_index.end() ? -1 : it->second;
  }

  std::size_t n_ = 0;  // vertices per source row (set by the builder)
};

/// `threads`: worker threads for the per-source sweeps (sources are
/// independent — disjoint output rows, per-source bookkeeping — so any pool
/// size yields bit-identical results and round charges). 0 consults the
/// NORS_THREADS environment variable; 1 is serial.
SourceDetectionResult source_detection(const graph::WeightedGraph& g,
                                       const std::vector<graph::Vertex>& sources,
                                       std::int64_t hop_bound,
                                       const util::Epsilon& eps,
                                       int bfs_height, int threads = 0);

}  // namespace nors::primitives
