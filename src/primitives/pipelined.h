#pragma once

#include <cstdint>
#include <vector>

#include "congest/ledger.h"
#include "primitives/bfs_tree.h"

namespace nors::primitives {

/// Cost of disseminating M unit messages to every vertex via a BFS tree of
/// the given height (paper Lemma 1: O(M + D) rounds). The formula is the
/// exact cost of the pipelined schedule: every message first converges to
/// the root (height + M - 1 rounds in the worst case once pipelined) and is
/// then broadcast down (another height + M - 1), i.e. 2·(height + M).
/// `validate` in tests compares it against a real simulated run.
std::int64_t pipelined_broadcast_rounds(std::int64_t messages, int height);

/// Runs the real thing on the simulator: each vertex v holds tokens[v] unit
/// messages; all tokens are convergecast to the root of `tree` and then
/// broadcast to every vertex. Returns the simulated round count, which tests
/// compare to pipelined_broadcast_rounds.
std::int64_t simulate_pipelined_broadcast(const graph::WeightedGraph& g,
                                          const BfsTree& tree,
                                          const std::vector<int>& tokens);

}  // namespace nors::primitives
