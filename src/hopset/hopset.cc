#include "hopset/hopset.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "graph/shortest_paths.h"
#include "primitives/hierarchy.h"

namespace nors::hopset {

namespace {

using graph::Dist;
using graph::Vertex;

/// Reconstructs the shortest path src -> dst from a Dijkstra run, with
/// prefix distances measured from src.
HopsetEdge make_edge(const graph::SsspResult& sp, Vertex src, Vertex dst) {
  HopsetEdge e;
  e.u = src;
  e.v = dst;
  e.w = sp.dist[static_cast<std::size_t>(dst)];
  std::vector<Vertex> rev;
  for (Vertex x = dst; x != graph::kNoVertex;
       x = sp.parent[static_cast<std::size_t>(x)]) {
    rev.push_back(x);
  }
  e.path.assign(rev.rbegin(), rev.rend());
  NORS_CHECK(e.path.front() == src && e.path.back() == dst);
  e.prefix.reserve(e.path.size());
  for (Vertex x : e.path) {
    e.prefix.push_back(sp.dist[static_cast<std::size_t>(x)]);
  }
  return e;
}

/// Adjacency of G ∪ F with F weights taking precedence (paper: w'' agrees
/// with the hopset on conflicts; our F weights are exact distances, hence
/// never larger than a parallel G edge).
std::vector<std::vector<std::pair<Vertex, Dist>>> augmented_adjacency(
    const graph::WeightedGraph& g, const std::vector<HopsetEdge>& edges) {
  std::vector<std::map<Vertex, Dist>> best(static_cast<std::size_t>(g.n()));
  for (Vertex v = 0; v < g.n(); ++v) {
    for (const auto& e : g.neighbors(v)) {
      auto [it, fresh] = best[static_cast<std::size_t>(v)].insert({e.to, e.w});
      if (!fresh) it->second = std::min(it->second, e.w);
    }
  }
  for (const auto& he : edges) {
    for (auto [a, b] : {std::pair{he.u, he.v}, std::pair{he.v, he.u}}) {
      auto [it, fresh] = best[static_cast<std::size_t>(a)].insert({b, he.w});
      if (!fresh) it->second = std::min(it->second, he.w);
    }
  }
  std::vector<std::vector<std::pair<Vertex, Dist>>> adj(
      static_cast<std::size_t>(g.n()));
  for (Vertex v = 0; v < g.n(); ++v) {
    adj[static_cast<std::size_t>(v)].assign(
        best[static_cast<std::size_t>(v)].begin(),
        best[static_cast<std::size_t>(v)].end());
  }
  return adj;
}

}  // namespace

void Hopset::check_path_reporting(const graph::WeightedGraph& g) const {
  for (const auto& e : edges) {
    NORS_CHECK(!e.path.empty() && e.path.size() == e.prefix.size());
    NORS_CHECK(e.path.front() == e.u && e.path.back() == e.v);
    NORS_CHECK(e.prefix.front() == 0 && e.prefix.back() == e.w);
    for (std::size_t i = 1; i < e.path.size(); ++i) {
      const std::int32_t port = g.port_to(e.path[i - 1], e.path[i]);
      NORS_CHECK_MSG(port != graph::kNoPort,
                     "realizing path uses a non-edge");
      NORS_CHECK_MSG(
          e.prefix[i] - e.prefix[i - 1] == g.edge(e.path[i - 1], port).w,
          "prefix distances inconsistent with edge weights");
    }
  }
}

Hopset build_hopset(const graph::WeightedGraph& g, const HopsetParams& params,
                    int bfs_height) {
  const int m = g.n();
  NORS_CHECK(m >= 1);
  Hopset hs;
  if (m <= 2) {
    hs.beta = std::max(1, m - 1);
    hs.round_cost = 0;
    return hs;
  }

  util::Rng rng(params.seed);
  primitives::Hierarchy h =
      primitives::Hierarchy::sample(m, std::max(2, params.levels), rng);

  // Bunches with exact distances: for u at hierarchy level ℓ(u), connect u
  // to every w ∈ A_i with d(u,w) < d(u, A_{i+1}), plus u's i-pivots. All
  // realizing paths are exact shortest paths from u's Dijkstra tree.
  const int k = h.k();
  std::map<std::pair<Vertex, Vertex>, bool> seen;
  auto add = [&](const graph::SsspResult& sp, Vertex u, Vertex w) {
    if (u == w) return;
    if (graph::is_inf(sp.dist[static_cast<std::size_t>(w)])) return;
    const auto key = u < w ? std::make_pair(u, w) : std::make_pair(w, u);
    if (!seen.insert({key, true}).second) return;
    hs.edges.push_back(make_edge(sp, u, w));
  };

  for (Vertex u = 0; u < m; ++u) {
    const graph::SsspResult sp = graph::dijkstra(g, u);
    // d(u, A_i) for every level.
    std::vector<Dist> dset(static_cast<std::size_t>(k) + 1, graph::kDistInf);
    std::vector<Vertex> pivot(static_cast<std::size_t>(k) + 1,
                              graph::kNoVertex);
    for (Vertex w = 0; w < m; ++w) {
      const Dist d = sp.dist[static_cast<std::size_t>(w)];
      for (int i = 0; i <= h.level(w); ++i) {
        if (d < dset[static_cast<std::size_t>(i)]) {
          dset[static_cast<std::size_t>(i)] = d;
          pivot[static_cast<std::size_t>(i)] = w;
        }
      }
    }
    for (int i = 0; i < k; ++i) {
      if (pivot[static_cast<std::size_t>(i)] != graph::kNoVertex) {
        add(sp, u, pivot[static_cast<std::size_t>(i)]);
      }
    }
    for (Vertex w = 0; w < m; ++w) {
      const int i = h.level(w);
      if (sp.dist[static_cast<std::size_t>(w)] <
          dset[static_cast<std::size_t>(i) + 1]) {
        add(sp, u, w);
      }
    }
  }

  // Measure β: smallest hop count for which every pair is within (1+ε) of
  // its exact distance in G ∪ F. Layered Bellman–Ford from each source.
  const auto adj = augmented_adjacency(g, hs.edges);
  int beta = 1;
  for (Vertex src = 0; src < m; ++src) {
    const graph::SsspResult exact = graph::dijkstra(g, src);
    std::vector<Dist> cur(static_cast<std::size_t>(m), graph::kDistInf);
    cur[static_cast<std::size_t>(src)] = 0;
    int hops = 0;
    for (;;) {
      bool all_ok = true;
      for (Vertex v = 0; v < m; ++v) {
        const Dist target = exact.dist[static_cast<std::size_t>(v)];
        if (graph::is_inf(target)) continue;
        if (!params.eps.leq_mul(cur[static_cast<std::size_t>(v)], target, 1)) {
          all_ok = false;
          break;
        }
      }
      if (all_ok) break;
      NORS_CHECK_MSG(hops <= m + 1, "hopset verification failed to converge");
      ++hops;
      std::vector<Dist> next = cur;
      for (Vertex v = 0; v < m; ++v) {
        const Dist dv = cur[static_cast<std::size_t>(v)];
        if (graph::is_inf(dv)) continue;
        for (const auto& [to, w] : adj[static_cast<std::size_t>(v)]) {
          next[static_cast<std::size_t>(to)] =
              std::min(next[static_cast<std::size_t>(to)], dv + w);
        }
      }
      cur = std::move(next);
    }
    beta = std::max(beta, std::max(1, hops));
  }
  hs.beta = beta;

  // Theorem 2 charge: Õ(m^{1+ρ} + D) · β².
  const double m_pow = std::pow(static_cast<double>(m), 1.0 + params.rho);
  hs.round_cost = static_cast<std::int64_t>(
      (m_pow + 2.0 * bfs_height) * static_cast<double>(beta) *
      static_cast<double>(beta));
  return hs;
}

std::vector<graph::Dist> bounded_hop_distances_with_hopset(
    const graph::WeightedGraph& g, const std::vector<HopsetEdge>& edges,
    graph::Vertex src, int beta) {
  const auto adj = augmented_adjacency(g, edges);
  std::vector<Dist> cur(static_cast<std::size_t>(g.n()), graph::kDistInf);
  cur[static_cast<std::size_t>(src)] = 0;
  for (int h = 0; h < beta; ++h) {
    std::vector<Dist> next = cur;
    bool changed = false;
    for (Vertex v = 0; v < g.n(); ++v) {
      const Dist dv = cur[static_cast<std::size_t>(v)];
      if (graph::is_inf(dv)) continue;
      for (const auto& [to, w] : adj[static_cast<std::size_t>(v)]) {
        if (dv + w < next[static_cast<std::size_t>(to)]) {
          next[static_cast<std::size_t>(to)] = dv + w;
          changed = true;
        }
      }
    }
    cur = std::move(next);
    if (!changed) break;
  }
  return cur;
}

}  // namespace nors::hopset
