#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/ratio.h"

namespace nors::hopset {

/// One hopset edge together with its realizing path in the underlying
/// (virtual) graph — paper Property 1 (path-reporting): path[0] = u,
/// path.back() = v, prefix[i] = distance from u to path[i] along the path,
/// prefix.back() == w. Every vertex on the path can therefore recover its
/// distance to both endpoints and its path neighbors.
struct HopsetEdge {
  graph::Vertex u = graph::kNoVertex;
  graph::Vertex v = graph::kNoVertex;
  graph::Dist w = 0;
  std::vector<graph::Vertex> path;
  std::vector<graph::Dist> prefix;
};

struct HopsetParams {
  /// Hopset quality target: d^(β)_{G∪F} ≤ (1+ε)·d_G.
  util::Epsilon eps;
  /// Levels of the Thorup–Zwick sampling used for the bunch construction
  /// (κ in DESIGN.md §2.4). Larger κ → fewer edges, larger β.
  int levels = 2;
  std::uint64_t seed = 1;
  /// ρ of paper Theorem 2 (enters only the round-cost charge).
  double rho = 0.5;
};

/// A (β,ε)-hopset for a (virtual) graph, built from Thorup–Zwick bunches
/// with exact distances (DESIGN.md §2.4 substitution for [EN16a]; the
/// routing scheme is oblivious to which hopset is plugged in). β is
/// *measured*: the construction verifies, for every pair, that β hops over
/// G∪F reach within (1+ε) of the exact distance, and reports the smallest
/// such β. Rounds are charged per Theorem 2: (m^{1+ρ} + 2D)·β².
struct Hopset {
  std::vector<HopsetEdge> edges;
  int beta = 0;
  std::int64_t round_cost = 0;

  /// Verifies Property 1 (prefix sums consistent, endpoints match).
  void check_path_reporting(const graph::WeightedGraph& g) const;
};

Hopset build_hopset(const graph::WeightedGraph& g, const HopsetParams& params,
                    int bfs_height);

/// d^(β)-style bounded-hop distances from `src` in the graph `g` augmented
/// with `edges` (each hopset edge counts as one hop). Used by tests and by
/// the Phase-1 exploration.
std::vector<graph::Dist> bounded_hop_distances_with_hopset(
    const graph::WeightedGraph& g, const std::vector<HopsetEdge>& edges,
    graph::Vertex src, int beta);

}  // namespace nors::hopset
