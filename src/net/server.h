#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include <span>

#include "net/wire.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "serve/wal.h"

namespace nors::net {

struct NetServerOptions {
  /// Bind address. Defaults to loopback; serving beyond the host is a
  /// deliberate choice.
  std::string host = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;

  /// Worker event loops. Connections are assigned round-robin at accept
  /// and stay pinned to their loop — no cross-loop locking on the hot
  /// path. Clamped to [1, hardware concurrency] like the serving pools
  /// (util::resolve_threads; NORS_THREADS_OVERSUBSCRIBE=1 opts out).
  int loops = 1;

  /// ShardedRouteServer geometry per generation (see serve/shard.h).
  int shards = 1;
  int cache_entries = 0;

  /// Per-connection in-flight window: at most this many unanswered frames
  /// may be pipelined on one connection. At the limit the loop simply
  /// stops reading that socket (level-triggered interest drop), so
  /// backpressure propagates to the client through TCP flow control and
  /// the server's memory stays bounded per connection.
  int window = 64;

  /// Second backpressure bound: when a connection's pending response
  /// bytes exceed this, reading stops until the client drains them.
  std::size_t outbuf_limit = 4u << 20;

  /// Graceful-drain deadline: after this many ms, connections that still
  /// cannot flush (a client that stopped reading) are closed anyway so
  /// drain() always terminates.
  int drain_timeout_ms = 5000;

  // ------------------------------------------- overload control (§12) --
  /// Global in-flight query budget: the sum of route queries submitted to
  /// the shards but not yet completed, across all connections and loops.
  /// A kRoute frame that would push the sum past the budget is rejected
  /// with a recoverable kOverloaded frame (carrying retry_after_ms)
  /// instead of queueing — under sustained overload the server sheds
  /// excess offered load and keeps serving at capacity rather than
  /// growing queues without bound. 0 = unlimited.
  std::int64_t max_inflight_queries = 0;

  /// Per-loop admission cap: a loop with this many pending responses
  /// (across its connections) sheds further route frames with
  /// kOverloaded. Bounds per-loop memory independently of how many
  /// connections split the per-connection window. 0 = unlimited.
  int max_pending_per_loop = 0;

  /// The retry-after hint (ms) carried by kOverloaded frames.
  int retry_after_ms = 25;

  /// Per-connection request deadline: if the response to the oldest
  /// in-flight request is still not computed after this many ms (a wedged
  /// shard, an injected stall), the connection is force-closed and
  /// counted in WireStats::timeouts — in-order delivery means nothing
  /// behind the head could be answered anyway. 0 = no deadline.
  int request_deadline_ms = 0;

  /// Slow-peer write-stall timer, the outbuf-cap companion: a connection
  /// whose pending output makes no write progress for this many ms (a
  /// peer that stopped reading) is force-closed and counted in
  /// WireStats::stalls. The outbuf cap bounds how much such a peer can
  /// queue; this timer bounds for how long. 0 = disabled.
  int stall_timeout_ms = 0;

  /// SO_SNDBUF for accepted sockets (0 = kernel default). Chiefly a
  /// chaos/test knob: a small send buffer makes a non-reading peer wedge
  /// the connection quickly instead of hiding behind megabytes of kernel
  /// buffering.
  int sndbuf_bytes = 0;

  // ---------------------------------- durability + replication (§14) --
  /// Write-ahead-log directory; empty = no WAL (applied updates die with
  /// the process, the pre-§14 behavior). With a WAL, construction first
  /// recovers: every logged batch is replayed over the image before the
  /// first socket is opened, so a rebooted daemon serves exactly what a
  /// never-crashed one would. Admitted kUpdate batches are appended (and
  /// synced, per `fsync`) *before* the new generation is published — a
  /// batch the log could not hold is shed with a recoverable kWalError
  /// frame and the old generation keeps serving.
  std::string wal_dir;
  serve::FsyncPolicy fsync = serve::FsyncPolicy::kAlways;
  std::uint32_t fsync_interval_ms = 100;
  std::uint64_t wal_segment_bytes = 64ull << 20;

  /// Auto-checkpoint cadence: after this many applied batches the server
  /// runs checkpoint() on its own (0 = manual kCheckpoint frames only).
  std::int64_t checkpoint_every = 0;

  /// Where checkpoint() rebuilds the compacted frozen image (written to a
  /// temp file, fsynced, renamed over). Empty = no image rebuild; the WAL
  /// squash record alone carries the compaction.
  std::string image_path;

  /// "host:port" of a primary to follow. Non-empty makes this server a
  /// read-only replica: it subscribes to the primary's update stream,
  /// applies each batch at the primary's sequence number (logging it to
  /// its own WAL when one is configured), serves reads, and rejects
  /// client kUpdate frames with kReadOnly. Reconnects with backoff; a gap
  /// in the stream forces a fresh subscribe, which catches up via a
  /// snapshot batch.
  std::string replica_of;
};

/// The network front door over the frozen serving stack (DESIGN.md §11):
/// one acceptor plus `loops` epoll event loops (level-triggered), each
/// owning its connections outright, over a ShardedRouteServer per image
/// generation. Route frames are decoded, validated and submitted
/// asynchronously (serve/shard.h's completion-callback submit); the
/// answering shard worker wakes the owning loop through an eventfd, and
/// responses are written strictly in per-connection request order, so a
/// pipelining client needs no correlation logic. Hello/label/stats frames
/// are answered inline but flow through the same ordered pipeline.
///
/// Life cycle: the server starts serving on construction. drain() is the
/// SIGTERM path — stop accepting, stop reading, answer every frame already
/// parsed, flush, close, join (idempotent; the destructor drains if the
/// caller didn't). reload() is the SIGHUP path — atomically swap in a new
/// FrozenScheme generation; frames in flight finish on the generation they
/// were submitted to (kept alive by shared ownership), new frames route on
/// the new image, and no response is ever dropped or torn by a swap
/// (test_net pins this).
class Server {
 public:
  /// Takes ownership of the frozen image (FrozenScheme is move-only) and
  /// starts accepting immediately. Throws std::runtime_error when the
  /// socket cannot be bound.
  explicit Server(serve::FrozenScheme fs, NetServerOptions opt = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (the ephemeral one when options.port == 0).
  int port() const;

  /// Graceful shutdown: see class comment. Safe to call from any thread,
  /// including a signal-handling thread; returns once everything is
  /// closed and joined.
  void drain();

  /// Swap the serving image (class comment). Safe from any thread.
  void reload(serve::FrozenScheme fs);
  void reload_file(const std::string& path) {
    reload(serve::FrozenScheme::map(path));
  }

  /// Applies a journaled edge-update batch (DESIGN.md §13) and publishes
  /// the result as a new refcounted generation — the kUpdate frame's
  /// in-process twin (route_serviced's --updates replay drives this).
  /// Unlike reload(), a delta generation shares the frozen image and the
  /// shard compute with its predecessor; only the immutable DeltaSet is
  /// swapped, so applying a batch never spawns or joins threads. Frames in
  /// flight finish on the generation that admitted them. Safe from any
  /// thread; throws std::runtime_error when called on a draining server
  /// or with out-of-range vertices.
  UpdateAck apply_updates(std::span<const serve::EdgeUpdate> updates);

  /// Checkpoint compaction (DESIGN.md §14), the kCheckpoint frame's
  /// in-process twin: squash the live delta chain into one snapshot WAL
  /// record (truncating every older segment), and — when
  /// options.image_path is set — rebuild the frozen image with the
  /// current weight overrides baked in (temp file + rename, crash-safe at
  /// every step). The serving generation is untouched; only the recovery
  /// artifacts shrink. Runs whole under the update lock, so it
  /// linearizes against apply_updates. Safe from any thread; throws
  /// serve::WalError / std::runtime_error on I/O failure (the old log
  /// keeps its records — nothing is truncated before the squash lands).
  CheckpointAck checkpoint();

  /// Cumulative counters (the same numbers a kStats frame reports).
  WireStats stats() const;

  const NetServerOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nors::net
