#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.h"

namespace nors::net {

namespace {

int connect_once(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(ClientOptions opt) {
  for (int attempt = 0;; ++attempt) {
    fd_ = connect_once(opt.host, opt.port);
    if (fd_ >= 0) return;
    if (attempt >= opt.connect_retries) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt.retry_delay_ms));
  }
  throw std::runtime_error("cannot connect to " + opt.host + ":" +
                           std::to_string(opt.port));
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::send_bytes(const std::uint8_t* data, std::size_t len) {
  NORS_CHECK_MSG(fd_ >= 0, "client not connected");
  std::size_t off = 0;
  while (off < len) {
    const auto wr = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (wr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(wr);
  }
}

std::uint32_t Client::send_frame(FrameType type,
                                 std::span<const std::uint8_t> body) {
  const std::uint32_t id = next_id_++;
  scratch_.clear();
  append_frame(scratch_, type, id, body);
  send_bytes(scratch_.data(), scratch_.size());
  return id;
}

bool Client::recv_frame_or_eof(Frame& out) {
  NORS_CHECK_MSG(fd_ >= 0, "client not connected");
  for (;;) {
    const auto pr = parse_frame(inbuf_.data(), inbuf_.size());
    if (pr.status == ParseResult::Status::kFrame) {
      out = std::move(const_cast<ParseResult&>(pr).frame);
      inbuf_.erase(inbuf_.begin(),
                   inbuf_.begin() + static_cast<std::ptrdiff_t>(pr.consumed));
      return true;
    }
    if (pr.status == ParseResult::Status::kBad) {
      throw std::runtime_error("broken response stream from server");
    }
    std::uint8_t buf[65536];
    const auto rd = ::recv(fd_, buf, sizeof(buf), 0);
    if (rd == 0) return false;
    if (rd < 0) {
      if (errno == EINTR) continue;
      // A peer that closed hard (RST after our half-close, or mid-fuzz)
      // reads as ECONNRESET — the tests treat that like EOF.
      if (errno == ECONNRESET) return false;
      throw std::runtime_error(std::string("recv failed: ") +
                               std::strerror(errno));
    }
    inbuf_.insert(inbuf_.end(), buf, buf + rd);
  }
}

Frame Client::recv_frame() {
  Frame f;
  if (!recv_frame_or_eof(f)) {
    throw std::runtime_error("server closed the connection");
  }
  return f;
}

Frame Client::expect(FrameType want) {
  Frame f = recv_frame();
  if (f.type == FrameType::kError) {
    const WireError e = decode_error(f.body);
    throw ProtocolError(e.code, e.message);
  }
  NORS_CHECK_MSG(f.type == want, "unexpected response frame type");
  return f;
}

ServerInfo Client::hello() {
  send_frame(FrameType::kHello, {});
  return decode_hello_ack(expect(FrameType::kHelloAck).body);
}

std::uint32_t Client::send_route(const serve::Query* qs, std::size_t count) {
  scratch_.clear();
  std::vector<std::uint8_t> body;
  encode_route_request(body, qs, count);
  return send_frame(FrameType::kRoute, body);
}

std::vector<serve::Decision> Client::recv_route() {
  return decode_route_response(expect(FrameType::kRouteAck).body);
}

std::vector<serve::Decision> Client::route(
    const std::vector<serve::Query>& qs) {
  // Split oversized batches into max-width frames and pipeline them; the
  // in-order response guarantee makes reassembly a concatenation.
  std::size_t sent = 0, frames = 0;
  while (sent < qs.size() || frames == 0) {
    const std::size_t take =
        std::min(qs.size() - sent, kMaxQueriesPerFrame);
    send_route(qs.data() + sent, take);
    sent += take;
    ++frames;
    if (qs.empty()) break;
  }
  std::vector<serve::Decision> out;
  out.reserve(qs.size());
  for (std::size_t i = 0; i < frames; ++i) {
    auto part = recv_route();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<std::uint8_t> Client::label(graph::Vertex v) {
  std::vector<std::uint8_t> body;
  encode_label_request(body, v);
  send_frame(FrameType::kLabel, body);
  return decode_label_response(expect(FrameType::kLabelAck).body);
}

WireStats Client::stats() {
  send_frame(FrameType::kStats, {});
  return decode_stats_ack(expect(FrameType::kStatsAck).body);
}

}  // namespace nors::net
