#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.h"

namespace nors::net {

namespace {

using clock_t_ = std::chrono::steady_clock;

int connect_once(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Derives a jitter seed no two live clients share: a per-process counter
/// guarantees distinctness outright, and the clock / address / pid terms
/// decorrelate clients across processes and restarts. Everything funnels
/// through one splitmix64 step so near-identical inputs (two clients
/// constructed back to back) still land in unrelated streams. The old
/// seed — a compile-time constant XOR pid XOR this — collided whenever an
/// allocator handed a new client its predecessor's address, putting a
/// reconnect herd in backoff lockstep.
std::uint64_t fresh_jitter_seed(const void* self) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t s = 0x6e6f72735f636c74ull;
  s ^= counter.fetch_add(1, std::memory_order_relaxed) *
       0x9e3779b97f4a7c15ull;
  s ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  s ^= static_cast<std::uint64_t>(::getpid()) << 32;
  s ^= reinterpret_cast<std::uintptr_t>(self);
  return splitmix64(s);
}

/// poll() for `events` (POLLIN/POLLOUT) until `deadline` (zero time_point
/// = no deadline). Throws TimeoutError when the deadline passes first.
void wait_ready(int fd, short events, clock_t_::time_point deadline,
                const char* what) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != clock_t_::time_point{}) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock_t_::now());
      if (left.count() <= 0) {
        throw TimeoutError(std::string(what) + " timed out");
      }
      timeout_ms = static_cast<int>(left.count());
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return;  // ready (or error/hup: let recv/send report it)
    if (r == 0) throw TimeoutError(std::string(what) + " timed out");
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("poll failed: ") +
                             std::strerror(errno));
  }
}

}  // namespace

Client::Client(ClientOptions opt) : opt_(std::move(opt)) {
  jitter_seed_ = fresh_jitter_seed(this);
  jitter_rng_ = jitter_seed_;
  endpoints_ = opt_.endpoints;
  if (endpoints_.empty()) endpoints_.push_back({opt_.host, opt_.port});
  connect_rotate();
}

void Client::connect_rotate() {
  const auto deadline =
      opt_.connect_deadline_ms > 0
          ? clock_t_::now() + std::chrono::milliseconds(opt_.connect_deadline_ms)
          : clock_t_::time_point{};
  Backoff backoff(opt_.backoff_base_ms, opt_.backoff_cap_ms, jitter_rng_);
  // Each attempt tries the next endpoint in rotation; the very first
  // rotation is back-to-back (no sleep between *distinct* endpoints), so
  // failing over past one dead server costs one refused connect, not a
  // backoff. Sleeps only separate full attempts per the retry budget.
  for (int attempt = 0;; ++attempt) {
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      const auto& ep = endpoints_[(active_ + i) % endpoints_.size()];
      fd_ = connect_once(ep.host, ep.port);
      if (fd_ >= 0) {
        active_ = (active_ + i) % endpoints_.size();
        return;
      }
    }
    if (attempt >= opt_.connect_retries) break;
    auto sleep_ms = std::chrono::milliseconds(backoff.next());
    if (deadline != clock_t_::time_point{}) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock_t_::now());
      if (left.count() <= 0) break;  // budget exhausted: stop retrying
      sleep_ms = std::min(sleep_ms, left);
    }
    std::this_thread::sleep_for(sleep_ms);
  }
  const auto& ep = endpoints_[active_];
  throw std::runtime_error(
      "cannot connect to " + ep.host + ":" + std::to_string(ep.port) +
      (endpoints_.size() > 1
           ? " (or any of " + std::to_string(endpoints_.size() - 1) +
                 " failover endpoints)"
           : ""));
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::send_bytes(const std::uint8_t* data, std::size_t len) {
  NORS_CHECK_MSG(fd_ >= 0, "client not connected");
  const auto deadline =
      opt_.request_timeout_ms > 0
          ? clock_t_::now() + std::chrono::milliseconds(opt_.request_timeout_ms)
          : clock_t_::time_point{};
  std::size_t off = 0;
  while (off < len) {
    const auto wr =
        ::send(fd_, data + off, len - off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (wr < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLOUT, deadline, "send");
        continue;
      }
      throw std::runtime_error(std::string("send failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(wr);
  }
}

std::uint32_t Client::send_frame(FrameType type,
                                 std::span<const std::uint8_t> body) {
  const std::uint32_t id = next_id_++;
  scratch_.clear();
  append_frame(scratch_, type, id, body);
  send_bytes(scratch_.data(), scratch_.size());
  return id;
}

bool Client::recv_frame_or_eof(Frame& out) {
  NORS_CHECK_MSG(fd_ >= 0, "client not connected");
  const auto deadline =
      opt_.request_timeout_ms > 0
          ? clock_t_::now() + std::chrono::milliseconds(opt_.request_timeout_ms)
          : clock_t_::time_point{};
  for (;;) {
    const auto pr = parse_frame(inbuf_.data(), inbuf_.size());
    if (pr.status == ParseResult::Status::kFrame) {
      out = std::move(const_cast<ParseResult&>(pr).frame);
      inbuf_.erase(inbuf_.begin(),
                   inbuf_.begin() + static_cast<std::ptrdiff_t>(pr.consumed));
      return true;
    }
    if (pr.status == ParseResult::Status::kBad) {
      throw std::runtime_error("broken response stream from server");
    }
    std::uint8_t buf[65536];
    const auto rd = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (rd == 0) return false;
    if (rd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLIN, deadline, "recv");
        continue;
      }
      // A peer that closed hard (RST after our half-close, or mid-fuzz)
      // reads as ECONNRESET — the tests treat that like EOF.
      if (errno == ECONNRESET) return false;
      throw std::runtime_error(std::string("recv failed: ") +
                               std::strerror(errno));
    }
    inbuf_.insert(inbuf_.end(), buf, buf + rd);
  }
}

Frame Client::recv_frame() {
  Frame f;
  if (!recv_frame_or_eof(f)) {
    throw std::runtime_error("server closed the connection");
  }
  return f;
}

Frame Client::expect(FrameType want) {
  Frame f = recv_frame();
  if (f.type == FrameType::kError) {
    const WireError e = decode_error(f.body);
    if (e.code == ErrorCode::kOverloaded) {
      throw OverloadedError(e.message, e.retry_after_ms);
    }
    throw ProtocolError(e.code, e.message);
  }
  NORS_CHECK_MSG(f.type == want, "unexpected response frame type");
  return f;
}

ServerInfo Client::hello() {
  return with_failover([&] {
    send_frame(FrameType::kHello, {});
    return decode_hello_ack(expect(FrameType::kHelloAck).body);
  });
}

std::uint32_t Client::send_route(const serve::Query* qs, std::size_t count) {
  scratch_.clear();
  std::vector<std::uint8_t> body;
  encode_route_request(body, qs, count);
  return send_frame(FrameType::kRoute, body);
}

std::vector<serve::Decision> Client::recv_route() {
  return decode_route_response(expect(FrameType::kRouteAck).body);
}

std::vector<serve::Decision> Client::route(
    const std::vector<serve::Query>& qs) {
  return with_failover([&] { return route_once(qs); });
}

std::vector<serve::Decision> Client::route_once(
    const std::vector<serve::Query>& qs) {
  // Split oversized batches into max-width frames. Each round pipelines
  // every still-unanswered chunk (the in-order response guarantee lines
  // results up positionally), collects the kOverloaded rejections, then
  // sleeps max(server hint, jittered backoff) and resends just those.
  // Shed frames were never executed server-side and route queries are
  // read-only, so a retried run's decisions are bit-identical to an
  // unthrottled one.
  struct Chunk {
    std::size_t at = 0;
    std::size_t count = 0;
  };
  std::vector<Chunk> chunks;
  std::size_t sent = 0;
  while (sent < qs.size() || chunks.empty()) {
    const std::size_t take = std::min(qs.size() - sent, kMaxQueriesPerFrame);
    chunks.push_back({sent, take});
    sent += take;
    if (qs.empty()) break;
  }

  std::vector<std::vector<serve::Decision>> parts(chunks.size());
  std::vector<std::size_t> todo(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) todo[i] = i;

  Backoff backoff(opt_.backoff_base_ms, opt_.backoff_cap_ms, jitter_rng_);
  int retries_left = std::max(0, opt_.overload_retries);
  while (!todo.empty()) {
    for (const std::size_t i : todo) {
      send_route(qs.data() + chunks[i].at, chunks[i].count);
    }
    std::vector<std::size_t> shed;
    std::uint32_t hint_ms = 0;
    std::string last_msg;
    for (const std::size_t i : todo) {
      try {
        parts[i] = recv_route();
      } catch (const OverloadedError& e) {
        shed.push_back(i);
        hint_ms = std::max(hint_ms, e.retry_after_ms);
        last_msg = e.what();
      }
    }
    if (shed.empty()) break;
    if (retries_left-- <= 0) throw OverloadedError(last_msg, hint_ms);
    const int sleep_ms =
        overload_sleep_ms(hint_ms, opt_.retry_hint_cap_ms, backoff.next());
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    todo = std::move(shed);
  }

  std::vector<serve::Decision> out;
  out.reserve(qs.size());
  for (auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<std::uint8_t> Client::label(graph::Vertex v) {
  return with_failover([&] {
    std::vector<std::uint8_t> body;
    encode_label_request(body, v);
    send_frame(FrameType::kLabel, body);
    return decode_label_response(expect(FrameType::kLabelAck).body);
  });
}

WireStats Client::stats() {
  return with_failover([&] {
    send_frame(FrameType::kStats, {});
    return decode_stats_ack(expect(FrameType::kStatsAck).body);
  });
}

UpdateAck Client::update(std::span<const serve::EdgeUpdate> updates) {
  NORS_CHECK_MSG(updates.size() <= kMaxUpdatesPerFrame,
                 "update batch exceeds kMaxUpdatesPerFrame");
  std::vector<std::uint8_t> body;
  encode_update_request(body, updates);
  send_frame(FrameType::kUpdate, body);
  return decode_update_ack(expect(FrameType::kUpdateAck).body);
}

CheckpointAck Client::checkpoint() {
  send_frame(FrameType::kCheckpoint, {});
  return decode_checkpoint_ack(expect(FrameType::kCheckpointAck).body);
}

std::uint64_t Client::subscribe(std::uint64_t have_seq) {
  std::vector<std::uint8_t> body;
  encode_subscribe(body, have_seq);
  send_frame(FrameType::kSubscribe, body);
  return decode_subscribe_ack(expect(FrameType::kSubscribeAck).body);
}

}  // namespace nors::net
