#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "serve/delta.h"
#include "serve/frozen.h"

namespace nors::net {

// The route_serviced wire protocol (DESIGN.md §11): a versioned,
// length-prefixed, checksummed binary framing over a TCP byte stream.
// Everything is little-endian, like the NORSFRZ1 image format. A frame is
//
//   offset  size
//   0       4     magic "NRW1"
//   4       1     protocol version (kProtoVersion)
//   5       1     frame type (FrameType)
//   6       2     flags — must be zero (reserved)
//   8       4     request id — client-chosen, echoed verbatim in the
//                 response; responses on one connection always arrive in
//                 request order, so the id is a convenience, not a
//                 correlation requirement
//   12      4     body length in bytes (≤ kMaxBody)
//   16      ...   body (type-specific, varint-coded via core/serialize.h)
//   16+len  8     FNV-1a 64 over bytes [0, 16+len)
//
// Bodies reuse the canonical LEB128+zigzag codec of the frozen-image v3
// sections (core::put_uvarint / get_uvarint / zigzag), so a route
// query/response stays a handful of cache lines on the wire — the
// small-message discipline of Lenzen–Patt-Shamir applied to serving.
//
// Failure taxonomy (pinned by test_wire_fuzz): *envelope* errors — bad
// magic, unknown version, nonzero flags, oversized length prefix,
// checksum mismatch — poison the byte stream (there is no way to resync),
// so the server answers with a kError frame and closes the connection.
// *Body* errors — a frame whose envelope and checksum are valid but whose
// payload is malformed (truncated or over-long varints, count lies,
// trailing bytes, out-of-range vertices) — are answered with kError and
// the connection keeps serving. Neither may ever terminate the server.

inline constexpr std::uint32_t kMagic = 0x3157524Eu;  // "NRW1"
inline constexpr std::uint8_t kProtoVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kChecksumBytes = 8;

/// Body-size cap: an honest frame never needs more (kMaxQueriesPerFrame
/// queries at ≤ 10 varint bytes per vertex), and rejecting the length
/// prefix *before* buffering means a forged 2^31 length costs nothing.
inline constexpr std::size_t kMaxBody = 1u << 20;
inline constexpr std::size_t kMaxFrameBytes =
    kHeaderBytes + kMaxBody + kChecksumBytes;

/// Queries per kRoute frame (the client library splits larger batches).
inline constexpr std::size_t kMaxQueriesPerFrame = 1u << 15;

/// Edge events per kUpdate frame (same cap discipline as queries).
inline constexpr std::size_t kMaxUpdatesPerFrame = 1u << 15;

enum class FrameType : std::uint8_t {
  kHello = 1,      // client → server: empty body
  kHelloAck = 2,   // ServerInfo
  kRoute = 3,      // batched route queries
  kRouteAck = 4,   // one Decision per query, submission order
  kLabel = 5,      // uvarint vertex
  kLabelAck = 6,   // the vertex's packed wire label bytes
  kStats = 7,      // empty body
  kStatsAck = 8,   // WireStats
  kUpdate = 9,     // admin: batched edge updates (DESIGN.md §13)
  kUpdateAck = 10, // UpdateAck: the published generation's shape
  // Replication + durability (DESIGN.md §14). A replica subscribes with
  // the highest seq it already holds; the primary acks with its head seq
  // and then *pushes* kRepl frames — first a snapshot catch-up if the
  // replica is behind, then every subsequently applied batch, in apply
  // order. kRepl is the one server-initiated frame type in the protocol;
  // its request id is always 0.
  kSubscribe = 11,     // uvarint have_seq
  kSubscribeAck = 12,  // uvarint head_seq
  kRepl = 13,          // ReplFrame: seq-numbered applied batch (pushed)
  kCheckpoint = 14,    // admin: compact deltas + truncate the WAL (empty)
  kCheckpointAck = 16, // CheckpointAck
  kError = 15,     // uvarint code + message; response to any broken frame
};

enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadChecksum = 3,
  kBadLength = 4,   // body length prefix beyond kMaxBody
  kBadFlags = 5,    // reserved flags set
  kBadType = 6,     // unknown or response-only frame type
  kBadBody = 7,     // payload undecodable (varint guard, count lie, tail)
  kBadQuery = 8,    // decodable but out-of-range vertex
  kServerError = 9, // serving-side failure (corrupt image state)
  kDraining = 10,   // server is draining; no new work accepted
  /// Admission control shed this request: the in-flight query budget or
  /// the per-loop pending cap is exhausted (DESIGN.md §12). Recoverable
  /// — the connection stays open — and *retryable*: the error body
  /// carries a retry-after hint (ms), and route/label/stats are
  /// read-only, so resending the identical request is always safe.
  kOverloaded = 11,
  /// The WAL append/fsync for this kUpdate failed (ENOSPC, an I/O error,
  /// or an armed wal.* failpoint): the update was *shed* — no generation
  /// was published, nothing was logged — and the connection stays open;
  /// reads keep serving the old generation (DESIGN.md §14).
  kWalError = 12,
  /// kUpdate sent to a replica: replicas are read-only; updates must go
  /// to the primary. Recoverable; the connection stays open.
  kReadOnly = 13,
};

/// True for errors that poison the byte stream: the server closes the
/// connection after sending the kError frame (see taxonomy above).
inline bool is_fatal(ErrorCode c) {
  return c == ErrorCode::kBadMagic || c == ErrorCode::kBadVersion ||
         c == ErrorCode::kBadChecksum || c == ErrorCode::kBadLength ||
         c == ErrorCode::kBadFlags;
}

/// The FNV-1a 64 the frozen-image format trailer uses, applied per frame.
inline std::uint64_t fnv1a(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// A decoded frame envelope; body bytes are copied out of the stream
/// buffer so the buffer can compact independently of frame lifetime.
struct Frame {
  FrameType type = FrameType::kError;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> body;
};

/// Incremental frame parser verdict over a byte-stream prefix.
struct ParseResult {
  enum class Status { kNeedMore, kFrame, kBad };
  Status status = Status::kNeedMore;
  std::size_t consumed = 0;  // bytes to drop from the stream (kFrame only)
  Frame frame;               // valid when status == kFrame
  ErrorCode error = ErrorCode::kNone;  // set when status == kBad
  std::uint32_t request_id = 0;  // best-effort id for the error response
};

/// Examines the stream prefix [data, data+len). Envelope fields are
/// checked as soon as their bytes are available — a bad magic or an
/// oversized length prefix is rejected long before a full frame (or any
/// allocation proportional to the forged length) happens. Never throws.
ParseResult parse_frame(const std::uint8_t* data, std::size_t len);

/// Appends one complete frame (header + body + checksum) to `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t request_id,
                  std::span<const std::uint8_t> body);

// ------------------------------------------------------- body payloads --
// Encoders append varint fields to a body vector; decoders throw
// std::logic_error (the codec's own guard) on any malformed body,
// including bodies with undecoded trailing bytes. The server maps those
// throws to kBadBody error frames.

/// What kHelloAck carries: enough for a client to size and validate its
/// requests without ever seeing the image.
struct ServerInfo {
  std::uint32_t proto_version = kProtoVersion;
  std::int32_t n = 0;
  std::int32_t k = 0;
  std::uint32_t image_version = 0;  // frozen-format version behind serving
  std::int32_t num_trees = 0;
  std::uint32_t window = 0;  // per-connection in-flight frame window
};

/// What kStatsAck carries — the server's cumulative counters, so tests
/// can pin exact sums over concurrent clients from outside the process.
struct WireStats {
  std::int64_t conns_accepted = 0;
  std::int64_t conns_active = 0;
  std::int64_t frames_in = 0;
  std::int64_t frames_out = 0;
  std::int64_t queries = 0;
  std::int64_t protocol_errors = 0;
  std::int64_t reloads = 0;
  std::int64_t max_inflight = 0;  // high-water in-flight frames, any conn
  std::int64_t p50_ns = 0;        // request latency (parse → response)
  std::int64_t p99_ns = 0;
  // Failure-domain counters (DESIGN.md §12). shed counts route frames
  // rejected with kOverloaded by admission control; timeouts counts
  // connections force-closed because their head request outlived the
  // request deadline; stalls counts connections force-closed by the
  // slow-peer write-stall timer.
  std::int64_t shed = 0;
  std::int64_t timeouts = 0;
  std::int64_t stalls = 0;
  // Live-update counters (DESIGN.md §13): update batches applied and
  // published as generations; answers that fell back past a masked tree;
  // answers that crossed a weight-patched link.
  std::int64_t updates = 0;
  std::int64_t masked = 0;
  std::int64_t repaired = 0;
  // Durability + replication counters (DESIGN.md §14). update_seq is the
  // durable sequence number of the newest published batch; repl_lag is
  // how far this daemon trails the primary it follows (0 when primary or
  // in sync); subscribers counts attached replica streams.
  std::int64_t update_seq = 0;
  std::int64_t wal_records = 0;   // records appended this process
  std::int64_t wal_errors = 0;    // updates shed by a WAL failure
  std::int64_t checkpoints = 0;   // compactions completed
  std::int64_t repl_applied = 0;  // batches applied from a primary
  std::int64_t repl_lag = 0;
  std::int64_t subscribers = 0;
};

/// What kUpdateAck carries: the shape of the delta generation the batch
/// was published as (serve::DeltaStats plus the generation sequence).
struct UpdateAck {
  std::uint64_t seq = 0;           // published generation (base image = 0)
  std::int64_t applied = 0;        // batch events accepted
  std::int64_t unknown_edges = 0;  // batch events naming absent edges
  std::int64_t overrides = 0;      // cumulative patched link directions
  std::int64_t failed_links = 0;   // cumulative failed link directions
  std::int64_t masked_trees = 0;   // trees masked under the failures
};

void encode_route_request(std::vector<std::uint8_t>& body,
                          const serve::Query* queries, std::size_t count);
std::vector<serve::Query> decode_route_request(
    std::span<const std::uint8_t> body);

void encode_route_response(std::vector<std::uint8_t>& body,
                           const serve::Decision* decisions,
                           std::size_t count);
std::vector<serve::Decision> decode_route_response(
    std::span<const std::uint8_t> body);

void encode_hello_ack(std::vector<std::uint8_t>& body, const ServerInfo& i);
ServerInfo decode_hello_ack(std::span<const std::uint8_t> body);

void encode_label_request(std::vector<std::uint8_t>& body, graph::Vertex v);
graph::Vertex decode_label_request(std::span<const std::uint8_t> body);

void encode_label_response(std::vector<std::uint8_t>& body,
                           std::span<const std::uint8_t> label);
std::vector<std::uint8_t> decode_label_response(
    std::span<const std::uint8_t> body);

void encode_stats_ack(std::vector<std::uint8_t>& body, const WireStats& s);
WireStats decode_stats_ack(std::span<const std::uint8_t> body);

/// kUpdate body: uvarint count, then per event a flag (0 = weight,
/// 1 = fail), zigzag u, zigzag v, and — weight events only — the zigzag
/// weight (≥ 0 enforced on decode).
void encode_update_request(std::vector<std::uint8_t>& body,
                           std::span<const serve::EdgeUpdate> updates);
std::vector<serve::EdgeUpdate> decode_update_request(
    std::span<const std::uint8_t> body);

void encode_update_ack(std::vector<std::uint8_t>& body, const UpdateAck& a);
UpdateAck decode_update_ack(std::span<const std::uint8_t> body);

/// What kRepl carries: one applied batch, sequence-numbered, plus the
/// primary's head seq at send time (the replica's lag gauge). A snapshot
/// frame replaces the replica's accumulated delta state instead of
/// layering over it (catch-up and checkpoint squashes); `more` marks a
/// chunked snapshot whose events continue in the next frame at the same
/// seq — the replica buffers until the final chunk.
struct ReplFrame {
  std::uint64_t seq = 0;
  std::uint64_t head_seq = 0;
  bool snapshot = false;
  bool more = false;
  std::vector<serve::EdgeUpdate> events;
};

void encode_repl(std::vector<std::uint8_t>& body, const ReplFrame& f);
ReplFrame decode_repl(std::span<const std::uint8_t> body);

void encode_subscribe(std::vector<std::uint8_t>& body,
                      std::uint64_t have_seq);
std::uint64_t decode_subscribe(std::span<const std::uint8_t> body);

void encode_subscribe_ack(std::vector<std::uint8_t>& body,
                          std::uint64_t head_seq);
std::uint64_t decode_subscribe_ack(std::span<const std::uint8_t> body);

/// What kCheckpointAck carries: the compacted state's shape.
struct CheckpointAck {
  std::uint64_t seq = 0;          // durable seq the checkpoint captured
  std::int64_t squashed = 0;      // override directions in the squash
  std::int64_t image_rebuilt = 0; // 1 if the frozen image was rewritten
  std::int64_t wal_segments = 0;  // segments after truncation (0: no WAL)
};

void encode_checkpoint_ack(std::vector<std::uint8_t>& body,
                           const CheckpointAck& a);
CheckpointAck decode_checkpoint_ack(std::span<const std::uint8_t> body);

void encode_error(std::vector<std::uint8_t>& body, ErrorCode code,
                  const std::string& message);

/// The kOverloaded body: code, then a uvarint retry-after hint (ms),
/// then the message. decode_error() understands both layouts — the hint
/// field exists only when code == kOverloaded, and a truncated or
/// malformed hint throws the codec's std::logic_error like any other
/// bad body (test_wire_fuzz pins this).
void encode_overloaded(std::vector<std::uint8_t>& body,
                       std::uint32_t retry_after_ms,
                       const std::string& message);

struct WireError {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
  std::uint32_t retry_after_ms = 0;  // kOverloaded only
};
WireError decode_error(std::span<const std::uint8_t> body);

}  // namespace nors::net
