#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/frozen.h"

namespace nors::net {

/// A kError response frame, surfaced as an exception by the typed calls.
/// Recoverable codes (kBadBody, kBadQuery, ...) leave the connection
/// usable — catch, fix the request, keep going; fatal codes mean the
/// server is about to close the socket (see wire.h's taxonomy).
struct ProtocolError : std::runtime_error {
  ProtocolError(ErrorCode c, const std::string& msg)
      : std::runtime_error(msg), code(c) {}
  ErrorCode code;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Extra connect attempts before giving up — lets a client outwait a
  /// daemon that is still binding its socket.
  int connect_retries = 0;
  int retry_delay_ms = 100;
};

/// Blocking client for the route_serviced wire protocol (net/wire.h): a
/// single TCP connection, synchronous typed calls (hello / route / label /
/// stats), and a split async pair (send_route / recv_route) for
/// pipelining — the server answers strictly in request order, so N sends
/// followed by N recvs line up positionally. The raw send_bytes /
/// send_frame / recv_frame layer exists for the wire-fuzz and protocol
/// tests; production callers want the typed calls. Not thread-safe: one
/// Client per thread (connections are cheap; the server pins each to one
/// event loop anyway).
class Client {
 public:
  /// Connects (with retries per the options); throws std::runtime_error
  /// when the server cannot be reached.
  explicit Client(ClientOptions opt);
  Client(const std::string& host, int port)
      : Client(ClientOptions{host, port}) {}
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ------------------------------------------------------- typed calls --
  ServerInfo hello();

  /// Routes a batch: splits it into kRoute frames of at most
  /// kMaxQueriesPerFrame queries, pipelines them, and reassembles the
  /// decisions in query order. Throws ProtocolError on a kError response.
  std::vector<serve::Decision> route(const std::vector<serve::Query>& qs);

  std::vector<std::uint8_t> label(graph::Vertex v);
  WireStats stats();

  // ------------------------------------------- pipelined route frames --
  /// Sends one kRoute frame (count ≤ kMaxQueriesPerFrame) without waiting;
  /// returns the request id used.
  std::uint32_t send_route(const serve::Query* qs, std::size_t count);

  /// Receives the next response frame, which must be the kRouteAck (or
  /// kError → ProtocolError) for the oldest unanswered send_route.
  std::vector<serve::Decision> recv_route();

  // ------------------------------------------------------- raw access --
  /// Writes raw bytes to the socket — the fuzz tests' door for malformed
  /// framing. Throws when the connection is gone.
  void send_bytes(const std::uint8_t* data, std::size_t len);

  /// Encodes and sends a well-formed frame with an arbitrary body.
  std::uint32_t send_frame(FrameType type, std::span<const std::uint8_t> body);

  /// Blocks for the next complete frame. Throws std::runtime_error if the
  /// peer closes or the stream breaks instead.
  Frame recv_frame();

  /// As recv_frame(), but a clean peer close returns false instead of
  /// throwing — how tests assert "the server hung up".
  bool recv_frame_or_eof(Frame& out);

  /// Half-close: no more requests, but responses still flow. drain tests
  /// use this to say "done sending" without dropping in-flight replies.
  void shutdown_send();

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  Frame expect(FrameType want);

  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  std::vector<std::uint8_t> inbuf_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace nors::net
