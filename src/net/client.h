#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/frozen.h"

namespace nors::net {

/// A kError response frame, surfaced as an exception by the typed calls.
/// Recoverable codes (kBadBody, kBadQuery, ...) leave the connection
/// usable — catch, fix the request, keep going; fatal codes mean the
/// server is about to close the socket (see wire.h's taxonomy).
struct ProtocolError : std::runtime_error {
  ProtocolError(ErrorCode c, const std::string& msg)
      : std::runtime_error(msg), code(c) {}
  ErrorCode code;
};

/// The admission-control rejection (kOverloaded), carrying the server's
/// retry-after hint. The connection stays usable; the request was never
/// executed, and route/label/stats are read-only, so resending the
/// identical request is always safe. route() retries these itself when
/// ClientOptions::overload_retries > 0.
struct OverloadedError : ProtocolError {
  OverloadedError(const std::string& msg, std::uint32_t hint_ms)
      : ProtocolError(ErrorCode::kOverloaded, msg),
        retry_after_ms(hint_ms) {}
  std::uint32_t retry_after_ms;
};

/// A per-request deadline expired (ClientOptions::request_timeout_ms)
/// before the server produced the expected bytes. The connection state is
/// indeterminate after a timeout — a late response may still arrive and
/// would desynchronize the request/response pairing — so callers should
/// close() and reconnect.
struct TimeoutError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One server address in a failover list.
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;

  /// Failover list (DESIGN.md §14). Empty = just {host, port}. When
  /// non-empty it replaces host/port entirely: connecting tries the
  /// endpoints in rotation (connect_retries budgets the whole rotation),
  /// and a *read-only* call — hello / route / label / stats — that dies
  /// on a transport error (connection refused, peer closed the socket,
  /// request timeout) transparently reconnects to the next endpoint and
  /// retries, visiting each endpoint at most once per call. Safe because
  /// those calls execute no writes; update() and checkpoint() never fail
  /// over — they mutate, and a timeout leaves their outcome unknown, so
  /// the caller must decide.
  std::vector<Endpoint> endpoints;

  /// Extra connect attempts before giving up — lets a client outwait a
  /// daemon that is still binding its socket. Attempts are spaced by
  /// exponential backoff with jitter: the nth sleep is drawn uniformly
  /// from [d/2, d] where d = min(backoff_base_ms << n, backoff_cap_ms).
  int connect_retries = 0;

  /// Overall wall-clock budget for connecting, across all attempts and
  /// backoff sleeps. 0 = no deadline (retries alone bound the loop).
  int connect_deadline_ms = 0;

  /// Backoff shape shared by connect retries and route()'s kOverloaded
  /// retries.
  int backoff_base_ms = 20;
  int backoff_cap_ms = 1000;

  /// Per-request deadline (ms) for every blocking receive and send: when
  /// the server doesn't produce (or accept) the expected bytes in time,
  /// the call throws TimeoutError. 0 = wait forever.
  int request_timeout_ms = 0;

  /// How many times route() resends a frame the server shed with
  /// kOverloaded before giving up and rethrowing OverloadedError. Each
  /// retry sleeps max(server hint, jittered backoff). Safe because route
  /// queries are read-only (see OverloadedError). 0 = don't retry.
  int overload_retries = 0;

  /// Ceiling on the server's kOverloaded retry-after hint (ms). The hint
  /// is a uint32 chosen by the *peer*: unclamped, a large or hostile
  /// value would either park the client for days or — as in the bug this
  /// knob fixes — overflow the int conversion, go negative, lose to the
  /// backoff in max(), and defeat the overload sleep entirely. Hints
  /// above the cap sleep exactly the cap.
  int retry_hint_cap_ms = 10'000;
};

/// splitmix64: the client's jitter PRNG step (public so tests can
/// replay a schedule from a captured seed).
inline std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Exponential backoff with jitter: the nth delay is drawn uniformly from
/// [d/2, d], d = min(base << n, cap). The jitter decorrelates a herd of
/// clients that all hit the same overloaded server (or the same not-yet-
/// bound daemon) at once — without it they would retry in lockstep and
/// collide again every round. Public (with Client::jitter_seed()) so
/// test_chaos can pin that two concurrent clients' schedules diverge.
class Backoff {
 public:
  Backoff(int base_ms, int cap_ms, std::uint64_t& rng)
      : next_ms_(std::max(1, base_ms)), cap_ms_(std::max(1, cap_ms)),
        rng_(rng) {}

  /// The next sleep duration in ms (advances the schedule).
  int next() {
    const int d = next_ms_;
    next_ms_ = std::min(cap_ms_, next_ms_ * 2);
    const int half = std::max(1, d / 2);
    return half + static_cast<int>(splitmix64(rng_) %
                                   static_cast<std::uint64_t>(d - half + 1));
  }

 private:
  int next_ms_;
  const int cap_ms_;
  std::uint64_t& rng_;
};

/// Blocking client for the route_serviced wire protocol (net/wire.h): a
/// single TCP connection, synchronous typed calls (hello / route / label /
/// stats), and a split async pair (send_route / recv_route) for
/// pipelining — the server answers strictly in request order, so N sends
/// followed by N recvs line up positionally. The raw send_bytes /
/// send_frame / recv_frame layer exists for the wire-fuzz and protocol
/// tests; production callers want the typed calls. Not thread-safe: one
/// Client per thread (connections are cheap; the server pins each to one
/// event loop anyway).
class Client {
 public:
  /// Connects (with retries per the options); throws std::runtime_error
  /// when the server cannot be reached within the retry/deadline budget.
  explicit Client(ClientOptions opt);
  Client(const std::string& host, int port)
      : Client(ClientOptions{.host = host, .port = port}) {}
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ------------------------------------------------------- typed calls --
  ServerInfo hello();

  /// Routes a batch: splits it into kRoute frames of at most
  /// kMaxQueriesPerFrame queries, pipelines them, and reassembles the
  /// decisions in query order. Frames the server sheds with kOverloaded
  /// are retried up to overload_retries times (sleeping max(hint,
  /// backoff) between rounds); the result is bit-identical to an
  /// unthrottled run because shed frames were never executed. Throws
  /// ProtocolError on any other kError response, OverloadedError when
  /// retries are exhausted, TimeoutError past request_timeout_ms.
  std::vector<serve::Decision> route(const std::vector<serve::Query>& qs);

  std::vector<std::uint8_t> label(graph::Vertex v);
  WireStats stats();

  /// Applies a journaled edge-update batch (≤ kMaxUpdatesPerFrame events)
  /// via a kUpdate admin frame; returns the published generation's shape.
  /// Throws ProtocolError on rejection (kBadQuery for out-of-range
  /// vertices, kDraining on a draining server, kWalError when the
  /// server's log shed the batch, kReadOnly on a replica). Never fails
  /// over (see ClientOptions::endpoints).
  UpdateAck update(std::span<const serve::EdgeUpdate> updates);

  /// Asks the server to checkpoint (compact its delta chain + truncate
  /// its WAL; DESIGN.md §14). Never fails over.
  CheckpointAck checkpoint();

  /// Subscribes this connection to the server's replication stream:
  /// sends kSubscribe with the seq we already hold, returns the server's
  /// head seq from the ack. After this, kRepl frames arrive via
  /// recv_frame() — the connection carries nothing else.
  std::uint64_t subscribe(std::uint64_t have_seq);

  /// The endpoint the client is currently connected (or pinned) to.
  const Endpoint& active_endpoint() const { return endpoints_[active_]; }

  // ------------------------------------------- pipelined route frames --
  /// Sends one kRoute frame (count ≤ kMaxQueriesPerFrame) without waiting;
  /// returns the request id used.
  std::uint32_t send_route(const serve::Query* qs, std::size_t count);

  /// Receives the next response frame, which must be the kRouteAck (or
  /// kError → ProtocolError / OverloadedError) for the oldest unanswered
  /// send_route.
  std::vector<serve::Decision> recv_route();

  // ------------------------------------------------------- raw access --
  /// Writes raw bytes to the socket — the fuzz tests' door for malformed
  /// framing. Throws when the connection is gone, TimeoutError when the
  /// socket stays unwritable past request_timeout_ms.
  void send_bytes(const std::uint8_t* data, std::size_t len);

  /// Encodes and sends a well-formed frame with an arbitrary body.
  std::uint32_t send_frame(FrameType type, std::span<const std::uint8_t> body);

  /// Blocks for the next complete frame. Throws std::runtime_error if the
  /// peer closes or the stream breaks instead, TimeoutError when no frame
  /// completes within request_timeout_ms.
  Frame recv_frame();

  /// As recv_frame(), but a clean peer close returns false instead of
  /// throwing — how tests assert "the server hung up".
  bool recv_frame_or_eof(Frame& out);

  /// Half-close: no more requests, but responses still flow. drain tests
  /// use this to say "done sending" without dropping in-flight replies.
  void shutdown_send();

  void close();
  bool connected() const { return fd_ >= 0; }

  /// This connection's jitter seed — mixed from a per-process counter,
  /// the clock, the instance address and the pid, so concurrent clients
  /// (same binary, same machine, same instant) draw distinct backoff
  /// schedules and an overload herd actually decorrelates. Exposed so
  /// tests can assert the divergence by replaying schedules.
  std::uint64_t jitter_seed() const { return jitter_seed_; }

  /// The overload-retry sleep: max(clamped server hint, jittered
  /// backoff). Static and pure so the clamp is directly testable — the
  /// uint32 hint is narrowed to int only *after* the cap, closing the
  /// overflow path where a huge hint went negative and lost the max().
  static int overload_sleep_ms(std::uint32_t hint_ms, int hint_cap_ms,
                               int backoff_ms) {
    const auto cap =
        static_cast<std::uint32_t>(std::max(0, hint_cap_ms));
    return std::max(static_cast<int>(std::min(hint_ms, cap)), backoff_ms);
  }

 private:
  Frame expect(FrameType want);
  std::vector<serve::Decision> route_once(const std::vector<serve::Query>& qs);

  /// Connect to some endpoint, starting at active_ and rotating, with
  /// the options' retry/backoff/deadline budget. Throws when the whole
  /// budget is spent without a connection.
  void connect_rotate();

  /// Runs `fn` with transparent endpoint failover — read-only calls
  /// only. ProtocolError (the server *answered*; the connection is fine)
  /// passes through; any transport error advances to the next endpoint
  /// and retries until every endpoint has been tried once.
  template <typename Fn>
  auto with_failover(Fn&& fn) -> decltype(fn()) {
    for (std::size_t tried = 0;; ++tried) {
      try {
        if (fd_ < 0) connect_rotate();
        return fn();
      } catch (const ProtocolError&) {
        throw;
      } catch (const std::exception&) {
        if (tried + 1 >= endpoints_.size()) throw;
        close();
        active_ = (active_ + 1) % endpoints_.size();
      }
    }
  }

  ClientOptions opt_;
  std::vector<Endpoint> endpoints_;
  std::size_t active_ = 0;
  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  std::uint64_t jitter_seed_ = 0;
  std::uint64_t jitter_rng_ = 0;
  std::vector<std::uint8_t> inbuf_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace nors::net
