#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/client.h"
#include "serve/shard.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/latency.h"
#include "util/threads.h"

namespace nors::net {

namespace {

using clock_t_ = std::chrono::steady_clock;

[[noreturn]] void sys_fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// fetch_max for the high-water stats.
void raise_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Splits "host:port" (empty host = loopback) for --replica-of.
std::pair<std::string, int> parse_host_port(const std::string& s) {
  const auto colon = s.rfind(':');
  NORS_CHECK_MSG(colon != std::string::npos && colon + 1 < s.size(),
                 "expected HOST:PORT, got: " << s);
  std::string host = s.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  return {host, std::stoi(s.substr(colon + 1))};
}

/// Crash-safe whole-file replacement: write to `path + ".tmp"`, fsync,
/// rename over `path`, fsync the directory — at every instant the old
/// file or the complete new one is what a reader (or a rebooting daemon)
/// sees. The checkpoint image rebuild goes through here.
void write_file_durable(const std::string& path,
                        std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) sys_fail("open image temp");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto wr = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (wr < 0 && errno == EINTR) continue;
    if (wr <= 0) {
      const int e = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = e;
      sys_fail("write image temp");
    }
    off += static_cast<std::size_t>(wr);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    const int e = errno;
    ::unlink(tmp.c_str());
    errno = e;
    sys_fail("persist image");
  }
  const auto slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

struct Server::Impl {
  // ------------------------------------------------------- generations --
  /// One serving view: an image, its sharded compute, and (possibly) a
  /// delta overlay. Route pendings hold a shared_ptr, so a swap never
  /// invalidates an in-flight batch: the generation that admitted it
  /// lives until its last response is encoded.
  ///
  /// Two kinds of swap publish a new Gen. reload() (SIGHUP) builds a
  /// fresh image + fresh shard workers. apply_updates() (kUpdate /
  /// --updates) *shares* the image and compute with its predecessor and
  /// swaps only the immutable DeltaSet — a delta generation costs a hash
  /// table, not a thread pool, so update batches can be frequent.
  struct Gen {
    Gen(serve::FrozenScheme f, const NetServerOptions& o)
        : fs(std::make_shared<serve::FrozenScheme>(std::move(f))) {
      serve::ShardedOptions so;
      so.shards = o.shards;
      so.cache_entries = o.cache_entries;
      srv = std::make_shared<serve::ShardedRouteServer>(*fs, so);
    }
    /// Delta successor: same image and compute, new overlay.
    Gen(const Gen& base, std::shared_ptr<const serve::DeltaSet> d)
        : fs(base.fs), srv(base.srv), delta(std::move(d)) {}
    std::shared_ptr<serve::FrozenScheme> fs;
    std::shared_ptr<serve::ShardedRouteServer> srv;
    std::shared_ptr<const serve::DeltaSet> delta;  // null = unpatched
  };

  struct Conn;

  /// One response-in-waiting, queued per connection in request order.
  /// Sync frames (hello/label/stats/errors) are born encoded; route
  /// frames become encodable when their batch ticket completes.
  struct Pending {
    std::uint32_t request_id = 0;
    FrameType resp_type = FrameType::kError;
    std::vector<std::uint8_t> resp_body;
    bool is_route = false;
    bool encoded = false;      // resp_body is final
    bool close_after = false;  // fatal: close once this response flushes
    // Route-only state. The queries/decisions arrays are owned here so a
    // shard worker can keep writing decisions even if the connection dies
    // mid-batch — the Pending (held by the completion callback) outlives
    // the socket.
    std::vector<serve::Query> queries;
    std::vector<serve::Decision> decisions;
    serve::ShardedRouteServer::Batch batch;
    std::shared_ptr<Gen> gen;
    std::weak_ptr<Conn> conn;
    clock_t_::time_point t0;
    std::int64_t charged = 0;  // queries held against the global budget
  };

  struct Conn : std::enable_shared_from_this<Conn> {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::deque<std::shared_ptr<Pending>> pipeline;
    std::uint32_t events = 0;   // current epoll interest mask
    bool closing = false;       // flush remaining output, then close
    bool stop_parse = false;    // stream poisoned by an envelope error
    bool stall_armed = false;   // unflushed output is waiting on the peer
    clock_t_::time_point stall_since{};  // last write progress while armed
  };

  /// Cross-thread mailbox of one event loop: freshly accepted sockets
  /// (from the acceptor) and completed batches (from shard workers), each
  /// delivery paired with an eventfd wake. Held by shared_ptr from every
  /// completion callback, so a late completion after the loop has exited
  /// lands in a closed mailbox instead of freed memory.
  struct Inbox {
    std::mutex m;
    std::vector<int> fds;
    std::vector<std::shared_ptr<Pending>> done;
    /// Server-initiated frames (the kRepl stream), already fully framed,
    /// addressed to one of this loop's connections. Only the loop thread
    /// touches a Conn, so apply_batch hands the bytes over here.
    std::vector<std::pair<std::weak_ptr<Conn>, std::vector<std::uint8_t>>>
        push;
    int wakefd = -1;
    bool open = true;

    void wake() {
      const std::uint64_t one = 1;
      [[maybe_unused]] const auto r = ::write(wakefd, &one, sizeof(one));
    }
    ~Inbox() {
      if (wakefd >= 0) ::close(wakefd);
    }
  };

  struct Loop {
    std::shared_ptr<Inbox> inbox = std::make_shared<Inbox>();
    std::thread thread;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    util::LatencyHistogram latency;  // route request parse → response
    std::atomic<std::int64_t> active{0};
    std::int64_t pending = 0;  // responses in flight, loop-thread only
    int ep = -1;
  };

  // ------------------------------------------------------------- state --
  NetServerOptions opt;
  int listen_fd = -1;
  int bound_port = 0;
  std::shared_ptr<Inbox> accept_inbox = std::make_shared<Inbox>();
  std::thread accept_thread;
  std::vector<std::unique_ptr<Loop>> loops;

  mutable std::mutex gen_m;
  std::shared_ptr<Gen> gen;
  /// Every live generation. A ShardedRouteServer's destructor joins its
  /// workers, so the *last* reference to one must never be dropped from
  /// one of those workers — pinning generations here lets drain() quiesce
  /// them all from the draining thread. Retired *delta* generations are
  /// pruned on each swap (prune_gens_locked): a delta Gen holds no
  /// threads of its own, and it is only erased while its srv is still
  /// co-owned by a surviving Gen, so pruning never destroys a shard pool.
  /// Retired *image* generations (reloads are rare) stay until drain().
  std::vector<std::shared_ptr<Gen>> all_gens;

  /// Where a completion callback parks its Pending when the owning loop
  /// has already exited (post-drain straggler): disposal is deferred to
  /// drain(), after every worker is joined.
  std::mutex grave_m;
  std::vector<std::shared_ptr<Pending>> grave;

  std::atomic<bool> draining{false};
  std::mutex drain_m;
  bool drained = false;

  std::atomic<std::int64_t> conns_accepted{0};
  std::atomic<std::int64_t> frames_in{0};
  std::atomic<std::int64_t> frames_out{0};
  std::atomic<std::int64_t> queries{0};
  std::atomic<std::int64_t> protocol_errors{0};
  std::atomic<std::int64_t> reloads{0};
  std::atomic<std::int64_t> max_inflight{0};
  /// Route queries submitted to the shards and not yet completed — the
  /// quantity max_inflight_queries budgets. Charged at admission,
  /// released by the batch completion callback (the shard side is done
  /// then; the encoded response is bounded separately by the outbuf cap).
  std::atomic<std::int64_t> inflight_queries{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> timeouts{0};
  std::atomic<std::int64_t> stalls{0};
  std::atomic<std::int64_t> updates{0};

  // ------------------------------------ durability + replication (§14) --
  std::unique_ptr<serve::Wal> wal;  // appends under gen_m; null = no WAL
  /// Durable sequence number of the newest published batch (guarded by
  /// gen_m). Recovered from the WAL at boot; monotonic across reloads and
  /// checkpoints for the server's whole life.
  std::uint64_t update_seq = 0;
  struct Subscriber {
    std::weak_ptr<Conn> conn;
    std::shared_ptr<Inbox> inbox;
  };
  std::vector<Subscriber> subscribers;  // guarded by gen_m
  std::mutex ckpt_m;                    // one checkpoint at a time
  std::thread follower_thread;          // replica mode only
  std::atomic<std::uint64_t> repl_head{0};  // primary's head (replica)
  std::atomic<std::int64_t> wal_errors{0};
  std::atomic<std::int64_t> checkpoints{0};
  std::atomic<std::int64_t> repl_applied{0};
  std::atomic<std::int64_t> batches_since_ckpt{0};

  // ---------------------------------------------------------- lifecycle --
  Impl(serve::FrozenScheme fs, NetServerOptions o) : opt(std::move(o)) {
    NORS_CHECK_MSG(opt.window >= 1, "window must be >= 1");
    gen = std::make_shared<Gen>(std::move(fs), opt);
    all_gens.push_back(gen);

    if (!opt.wal_dir.empty()) {
      // Recover before the first socket exists: replay every logged batch
      // over the image so the daemon boots into exactly the state a
      // never-crashed one would serve. No thread has started yet, so the
      // replay callback may touch `gen` without the lock. A snapshot
      // record (a checkpoint squash) replaces the accumulated delta
      // chain — it is applied against the base image.
      serve::WalOptions wo;
      wo.fsync = opt.fsync;
      wo.fsync_interval_ms = opt.fsync_interval_ms;
      wo.segment_bytes = opt.wal_segment_bytes;
      wal = std::make_unique<serve::Wal>(
          opt.wal_dir, wo, [this](const serve::WalRecord& r) {
            auto delta = serve::DeltaSet::apply(
                *gen->fs, r.snapshot ? nullptr : gen->delta.get(), r.events);
            gen = std::make_shared<Gen>(*gen, std::move(delta));
            all_gens.push_back(gen);
            prune_gens_locked();
          });
      update_seq = wal->last_seq();
    }

    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) sys_fail("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd);
      throw std::runtime_error("bad bind address: " + opt.host);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 128) != 0) {
      const int e = errno;
      ::close(listen_fd);
      errno = e;
      sys_fail("bind/listen");
    }
    socklen_t alen = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &alen);
    bound_port = ntohs(addr.sin_port);

    const int nloops =
        std::min(std::max(1, opt.loops), util::resolve_threads(opt.loops));
    for (int i = 0; i < nloops; ++i) {
      loops.push_back(std::make_unique<Loop>());
      loops.back()->inbox->wakefd =
          ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (loops.back()->inbox->wakefd < 0) sys_fail("eventfd");
    }
    accept_inbox->wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (accept_inbox->wakefd < 0) sys_fail("eventfd");

    for (auto& l : loops) {
      l->thread = std::thread([this, lp = l.get()] { run_loop(*lp); });
    }
    accept_thread = std::thread([this] { run_acceptor(); });
    if (!opt.replica_of.empty()) {
      follower_thread = std::thread([this] { run_follower(); });
    }
  }

  ~Impl() { drain(); }

  void drain() {
    std::lock_guard<std::mutex> lk(drain_m);
    if (drained) return;
    draining.store(true, std::memory_order_release);
    accept_inbox->wake();
    for (auto& l : loops) l->inbox->wake();
    if (accept_thread.joinable()) accept_thread.join();
    for (auto& l : loops) {
      if (l->thread.joinable()) l->thread.join();
    }
    if (follower_thread.joinable()) follower_thread.join();
    // Quiesce every generation from *this* thread: ~ShardedRouteServer
    // joins its workers, which must never happen on one of them. After
    // the joins, every completion callback has fully run, so the grave
    // is complete and safe to clear.
    std::vector<std::shared_ptr<Gen>> gens;
    {
      std::lock_guard<std::mutex> glk(gen_m);
      gens.swap(all_gens);
      gen.reset();
    }
    for (auto& g : gens) g->srv.reset();
    {
      std::lock_guard<std::mutex> glk(grave_m);
      grave.clear();
    }
    gens.clear();
    drained = true;
  }

  void reload(serve::FrozenScheme fs) {
    auto next = std::make_shared<Gen>(std::move(fs), opt);
    {
      std::lock_guard<std::mutex> lk(gen_m);
      if (draining.load(std::memory_order_acquire)) return;  // too late
      gen = next;
      all_gens.push_back(std::move(next));
      prune_gens_locked();
      // A reload drops the delta chain by design, so the WAL records that
      // described it are void too: truncate to an empty log at the
      // current seq. (Replicas of a reloaded primary must be restarted
      // with the new image — the stream carries deltas, not images.)
      if (wal != nullptr) wal->reset(update_seq, nullptr);
    }
    reloads.fetch_add(1, std::memory_order_relaxed);
  }

  /// Erases retired generations nothing references anymore — but only
  /// while their shard pool is co-owned by a surviving generation, so the
  /// erase can never destroy a ShardedRouteServer (whose destructor joins
  /// threads) from here. Runs under gen_m on whatever thread swapped.
  void prune_gens_locked() {
    std::erase_if(all_gens, [this](const std::shared_ptr<Gen>& g) {
      return g != gen && g.use_count() == 1 && g->srv.use_count() > 1;
    });
  }

  UpdateAck apply_updates(std::span<const serve::EdgeUpdate> batch) {
    return apply_batch(batch, 0, false);
  }

  /// The one write path (§14). repl_seq == 0: a local/client batch — the
  /// next durable seq is allocated here. repl_seq > 0: the primary's
  /// batch applied at *its* seq — a duplicate (seq ≤ update_seq, stream
  /// re-delivery after a reconnect) is acked without effect, `snapshot`
  /// batches replace the whole delta chain (applied against the base
  /// image), and a non-snapshot, non-contiguous seq is a stream gap the
  /// follower must repair by resubscribing. The order inside the lock is
  /// the durability contract: append + sync the WAL first, publish the
  /// generation second — a batch the log rejected is never served, and a
  /// batch a subscriber sees is always durable on the primary.
  UpdateAck apply_batch(std::span<const serve::EdgeUpdate> batch,
                        std::uint64_t repl_seq, bool snapshot) {
    serve::DeltaStats ds;
    std::uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lk(gen_m);
      NORS_CHECK_MSG(gen != nullptr &&
                         !draining.load(std::memory_order_acquire),
                     "apply_updates on a draining server");
      if (repl_seq != 0 && repl_seq <= update_seq) {
        UpdateAck dup;
        dup.seq = update_seq;  // already applied: ack, change nothing
        return dup;
      }
      if (repl_seq != 0 && !snapshot) {
        NORS_CHECK_MSG(repl_seq == update_seq + 1,
                       "replication gap: resubscribe for a snapshot");
      }
      auto delta = serve::DeltaSet::apply(
          *gen->fs, snapshot ? nullptr : gen->delta.get(), batch, &ds);
      seq = repl_seq != 0 ? repl_seq : update_seq + 1;
      if (wal != nullptr) {
        try {
          wal->append(seq, snapshot, batch);
        } catch (const serve::WalError&) {
          wal_errors.fetch_add(1, std::memory_order_relaxed);
          throw;  // nothing published: the old generation keeps serving
        }
      }
      auto next = std::make_shared<Gen>(*gen, std::move(delta));
      gen = next;
      update_seq = seq;
      all_gens.push_back(std::move(next));
      prune_gens_locked();
      push_to_subscribers_locked(seq, snapshot, batch);
    }
    updates.fetch_add(1, std::memory_order_release);
    if (repl_seq != 0) {
      repl_applied.fetch_add(1, std::memory_order_relaxed);
    }
    maybe_auto_checkpoint();
    UpdateAck a;
    a.seq = seq;
    a.applied = ds.applied;
    a.unknown_edges = ds.unknown_edges;
    a.overrides = ds.overrides;
    a.failed_links = ds.failed_links;
    a.masked_trees = ds.masked_trees;
    return a;
  }

  void maybe_auto_checkpoint() {
    if (opt.checkpoint_every <= 0 || wal == nullptr) return;
    if (batches_since_ckpt.fetch_add(1, std::memory_order_relaxed) + 1 <
        opt.checkpoint_every) {
      return;
    }
    try {
      checkpoint();
    } catch (const std::exception&) {
      // Auto-compaction is advisory: on failure the log keeps its records
      // (checkpoint() never truncates before the squash lands) and the
      // next batch retries.
    }
  }

  /// Checkpoint compaction (§14): squash the delta chain into one
  /// snapshot WAL record, rebuild the frozen image with the weight
  /// overrides baked in (when image_path is set), truncate the log. Runs
  /// whole under gen_m so the image, the squash and the captured seq are
  /// one consistent cut — updates queue behind it (a checkpoint is a
  /// file-write, not a route computation). Failures leave the old log
  /// intact. Failed links stay in the squash record rather than the
  /// image: replaying it over either the old or the rebuilt image
  /// re-masks exactly the same trees, so recovery converges from both.
  CheckpointAck checkpoint() {
    std::lock_guard<std::mutex> ck(ckpt_m);
    std::lock_guard<std::mutex> lk(gen_m);
    NORS_CHECK_MSG(gen != nullptr &&
                       !draining.load(std::memory_order_acquire),
                   "checkpoint on a draining server");
    CheckpointAck a;
    a.seq = update_seq;
    std::vector<serve::EdgeUpdate> snap;
    const bool dirty =
        gen->delta != nullptr && gen->delta->override_count() > 0;
    if (dirty) {
      snap = gen->delta->as_edge_updates(*gen->fs);
      a.squashed = gen->delta->override_count();
      if (!opt.image_path.empty()) {
        write_file_durable(
            opt.image_path,
            gen->fs->save_with_link_weights(gen->delta->sorted_overrides()));
        a.image_rebuilt = 1;
      }
    }
    if (wal != nullptr) {
      wal->reset(update_seq, snap.empty() ? nullptr : &snap);
      a.wal_segments = static_cast<std::int64_t>(wal->segment_count());
    }
    checkpoints.fetch_add(1, std::memory_order_relaxed);
    batches_since_ckpt.store(0, std::memory_order_relaxed);
    return a;
  }

  /// Chunks one applied batch into encoded kRepl frame *bodies*. Every
  /// chunk carries the same seq; all but the last set `more`, and the
  /// receiver applies the reassembled batch once.
  static std::vector<std::vector<std::uint8_t>> build_repl_bodies(
      std::uint64_t seq, std::uint64_t head_seq, bool snapshot,
      std::span<const serve::EdgeUpdate> events) {
    std::vector<std::vector<std::uint8_t>> bodies;
    std::size_t at = 0;
    do {
      const std::size_t take =
          std::min(events.size() - at, kMaxUpdatesPerFrame);
      ReplFrame rf;
      rf.seq = seq;
      rf.head_seq = head_seq;
      rf.snapshot = snapshot;
      rf.more = at + take < events.size();
      rf.events.assign(events.begin() + static_cast<std::ptrdiff_t>(at),
                       events.begin() + static_cast<std::ptrdiff_t>(at + take));
      bodies.emplace_back();
      encode_repl(bodies.back(), rf);
      at += take;
    } while (at < events.size());
    return bodies;
  }

  /// Fans one applied batch out to every live subscriber, under gen_m (so
  /// the stream is in apply order, gap-free). The framed bytes travel
  /// through the owning loop's mailbox — only the loop thread touches a
  /// Conn. The repl.stream failpoint drops the whole push: followers see
  /// the gap on the next frame and resubscribe (snapshot catch-up), which
  /// is exactly the degraded path the chaos tests pin.
  void push_to_subscribers_locked(std::uint64_t seq, bool snapshot,
                                  std::span<const serve::EdgeUpdate> events) {
    if (subscribers.empty()) return;
    if (util::failpoint("repl.stream") == util::FpAction::kError) return;
    std::vector<std::vector<std::uint8_t>> frames;
    for (const auto& body : build_repl_bodies(seq, seq, snapshot, events)) {
      frames.emplace_back();
      append_frame(frames.back(), FrameType::kRepl, 0, body);
    }
    for (auto it = subscribers.begin(); it != subscribers.end();) {
      auto c = it->conn.lock();
      if (!c) {
        it = subscribers.erase(it);
        continue;
      }
      std::lock_guard<std::mutex> lk(it->inbox->m);
      if (it->inbox->open) {
        for (const auto& fb : frames) {
          it->inbox->push.emplace_back(it->conn, fb);
        }
        it->inbox->wake();
      }
      ++it;
    }
  }

  // ----------------------------------------------------------- follower --
  /// Replica mode: one background thread holding a subscription to the
  /// primary. Any stream anomaly — a gap, a decode error, the primary
  /// dying — tears the connection down and resubscribes with capped
  /// backoff; the subscribe handshake always rebases us via a snapshot
  /// when behind, so correctness never depends on the stream staying
  /// whole, only liveness does.
  void run_follower() {
    int backoff_ms = 50;
    while (!draining.load(std::memory_order_acquire)) {
      try {
        follow_once(backoff_ms);
      } catch (const std::exception&) {
        // Connect refused / stream broke / gap detected: back off, retry.
      }
      for (int slept = 0;
           slept < backoff_ms && !draining.load(std::memory_order_acquire);
           slept += 25) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
      backoff_ms = std::min(backoff_ms * 2, 2000);
    }
  }

  void follow_once(int& backoff_ms) {
    const auto [phost, pport] = parse_host_port(opt.replica_of);
    ClientOptions copt;
    copt.host = phost;
    copt.port = pport;
    copt.request_timeout_ms = 250;  // doubles as the draining poll tick
    Client cli(copt);
    std::uint64_t have = 0;
    {
      std::lock_guard<std::mutex> lk(gen_m);
      have = update_seq;
    }
    std::vector<std::uint8_t> body;
    encode_subscribe(body, have);
    cli.send_frame(FrameType::kSubscribe, body);
    Frame ack;
    for (;;) {
      try {
        ack = cli.recv_frame();
        break;
      } catch (const TimeoutError&) {
        if (draining.load(std::memory_order_acquire)) return;
      }
    }
    if (ack.type == FrameType::kError) {
      const WireError e = decode_error(ack.body);
      throw std::runtime_error("primary rejected subscribe: " + e.message);
    }
    NORS_CHECK_MSG(ack.type == FrameType::kSubscribeAck,
                   "unexpected subscribe response type");
    repl_head.store(decode_subscribe_ack(ack.body),
                    std::memory_order_relaxed);
    backoff_ms = 50;  // the handshake succeeded: reset the retry clock

    std::vector<serve::EdgeUpdate> batch;
    bool buffering = false;
    bool batch_snapshot = false;
    std::uint64_t batch_seq = 0;
    while (!draining.load(std::memory_order_acquire)) {
      Frame fr;
      try {
        fr = cli.recv_frame();
      } catch (const TimeoutError&) {
        continue;  // idle stream: poll the drain flag, keep waiting
      }
      NORS_CHECK_MSG(fr.type == FrameType::kRepl,
                     "unexpected frame on the replication stream");
      if (util::failpoint("repl.stream") == util::FpAction::kError) {
        throw std::runtime_error("repl.stream failpoint");
      }
      ReplFrame rf = decode_repl(fr.body);
      repl_head.store(rf.head_seq, std::memory_order_relaxed);
      if (!buffering) {
        buffering = true;
        batch_snapshot = rf.snapshot;
        batch_seq = rf.seq;
        batch.clear();
      } else {
        NORS_CHECK_MSG(rf.seq == batch_seq && rf.snapshot == batch_snapshot,
                       "torn chunked repl batch");
      }
      batch.insert(batch.end(), rf.events.begin(), rf.events.end());
      if (rf.more) continue;
      buffering = false;
      // Gaps and duplicates are judged inside apply_batch, under the lock
      // they matter to; a gap throws, landing us back in the resubscribe
      // path above.
      apply_batch(batch, batch_seq, batch_snapshot);
    }
  }

  std::shared_ptr<Gen> current_gen() {
    std::lock_guard<std::mutex> lk(gen_m);
    return gen;
  }

  /// Counter coherence (pinned by test_chaos): every counter is
  /// monotonically non-decreasing except conns_active, and this snapshot
  /// additionally guarantees the cross-counter bounds
  ///
  ///   frames_out ≤ frames_in
  ///   queries    ≤ frames_in · kMaxQueriesPerFrame
  ///   shed       ≤ frames_in
  ///   conns_active ≤ conns_accepted
  ///
  /// even while the server is under concurrent load. The argument is a
  /// happens-before chain per event: the "late" counter of each pair is
  /// incremented with release order strictly after the "early" one
  /// (frames_out/queries after that frame's frames_in; shed after
  /// frames_in; a loop's active after the acceptor's conns_accepted, via
  /// the inbox mutex), and the snapshot acquire-loads the late counters
  /// *first* — so any late event it observes has its early increment
  /// visible by the time the early counter is read.
  WireStats snapshot_stats() const {
    WireStats s;
    // Late counters first (acquire)...
    s.frames_out = frames_out.load(std::memory_order_acquire);
    s.queries = queries.load(std::memory_order_acquire);
    s.shed = shed.load(std::memory_order_acquire);
    util::LatencyHistogram::Counts merged{};
    for (const auto& l : loops) {
      s.conns_active += l->active.load(std::memory_order_acquire);
      const auto c = l->latency.snapshot();
      for (std::size_t b = 0; b < c.size(); ++b) merged[b] += c[b];
    }
    // ...then their upper bounds.
    s.frames_in = frames_in.load(std::memory_order_relaxed);
    s.conns_accepted = conns_accepted.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.reloads = reloads.load(std::memory_order_relaxed);
    s.updates = updates.load(std::memory_order_relaxed);
    s.max_inflight = max_inflight.load(std::memory_order_relaxed);
    s.timeouts = timeouts.load(std::memory_order_relaxed);
    s.stalls = stalls.load(std::memory_order_relaxed);
    s.wal_errors = wal_errors.load(std::memory_order_relaxed);
    s.checkpoints = checkpoints.load(std::memory_order_relaxed);
    s.repl_applied = repl_applied.load(std::memory_order_relaxed);
    s.p50_ns = static_cast<std::int64_t>(
        util::LatencyHistogram::quantile_us(merged, 0.5) * 1000.0);
    s.p99_ns = static_cast<std::int64_t>(
        util::LatencyHistogram::quantile_us(merged, 0.99) * 1000.0);
    // Overlay-serving counters, attributed per shard pool: generations
    // sharing one pool share its counts, so sum over *distinct* pools.
    {
      std::lock_guard<std::mutex> lk(gen_m);
      const serve::ShardedRouteServer* last = nullptr;
      for (const auto& g : all_gens) {
        if (g->srv.get() == last) continue;  // delta chain: same pool
        last = g->srv.get();
        const auto t = g->srv->totals();
        s.masked += t.masked;
        s.repaired += t.repaired;
      }
      s.update_seq = static_cast<std::int64_t>(update_seq);
      if (wal != nullptr) {
        s.wal_records = wal->stats().appends;
      }
      for (const auto& sub : subscribers) {
        if (!sub.conn.expired()) ++s.subscribers;
      }
      const std::uint64_t head = repl_head.load(std::memory_order_relaxed);
      if (head > update_seq) {
        s.repl_lag = static_cast<std::int64_t>(head - update_seq);
      }
    }
    return s;
  }

  // ---------------------------------------------------------- acceptor --
  void run_acceptor() {
    const int ep = ::epoll_create1(EPOLL_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.fd = accept_inbox->wakefd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, accept_inbox->wakefd, &ev);
    std::size_t next_loop = 0;
    epoll_event events[16];
    while (!draining.load(std::memory_order_acquire)) {
      const int nev = ::epoll_wait(ep, events, 16, -1);
      if (nev < 0 && errno == EINTR) continue;
      for (int i = 0; i < nev; ++i) {
        if (events[i].data.fd != listen_fd) continue;  // wake: loop around
        for (;;) {
          const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          if (util::failpoint("net.accept") == util::FpAction::kError) {
            ::close(fd);  // injected accept-time failure: drop the socket
            continue;
          }
          set_nodelay(fd);
          if (opt.sndbuf_bytes > 0) {
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opt.sndbuf_bytes,
                         sizeof(opt.sndbuf_bytes));
          }
          conns_accepted.fetch_add(1, std::memory_order_relaxed);
          Loop& l = *loops[next_loop++ % loops.size()];
          {
            std::lock_guard<std::mutex> lk(l.inbox->m);
            l.inbox->fds.push_back(fd);
          }
          l.inbox->wake();
        }
      }
    }
    ::close(listen_fd);
    listen_fd = -1;
    ::close(ep);
  }

  // --------------------------------------------------------- event loop --
  void update_interest(Loop& l, const std::shared_ptr<Conn>& c) {
    const bool want_write = c->out.size() > c->out_off;
    const bool want_read =
        !c->closing && !c->stop_parse &&
        !draining.load(std::memory_order_relaxed) &&
        c->pipeline.size() < static_cast<std::size_t>(opt.window) &&
        c->out.size() - c->out_off < opt.outbuf_limit;
    const std::uint32_t mask = (want_read ? EPOLLIN : 0u) |
                               (want_write ? EPOLLOUT : 0u);
    if (mask == c->events) return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = c->fd;
    ::epoll_ctl(l.ep, EPOLL_CTL_MOD, c->fd, &ev);
    c->events = mask;
  }

  void close_conn(Loop& l, const std::shared_ptr<Conn>& c) {
    if (c->fd < 0) return;
    ::epoll_ctl(l.ep, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    l.conns.erase(c->fd);
    c->fd = -1;
    l.pending -= static_cast<std::int64_t>(c->pipeline.size());
    c->pipeline.clear();  // in-flight Pendings stay alive via callbacks
    l.active.fetch_sub(1, std::memory_order_relaxed);
  }

  /// The single site that queues a response-in-waiting, so the per-loop
  /// pending count (the max_pending_per_loop admission input) can't
  /// drift from the pipelines it describes.
  void enqueue(Loop& l, const std::shared_ptr<Conn>& c,
               std::shared_ptr<Pending> p) {
    c->pipeline.push_back(std::move(p));
    ++l.pending;
    raise_max(max_inflight,
              static_cast<std::int64_t>(c->pipeline.size()));
  }

  std::shared_ptr<Pending> make_error(std::uint32_t request_id,
                                      ErrorCode code, const char* msg) {
    auto p = std::make_shared<Pending>();
    p->request_id = request_id;
    p->resp_type = FrameType::kError;
    p->encoded = true;
    p->close_after = is_fatal(code);
    encode_error(p->resp_body, code, msg);
    protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  /// Admission-control rejection: recoverable, carries the retry hint,
  /// and counts as shed load — not as a protocol error (the request was
  /// well-formed; the server simply declined the work).
  std::shared_ptr<Pending> make_overloaded(std::uint32_t request_id) {
    auto p = std::make_shared<Pending>();
    p->request_id = request_id;
    p->resp_type = FrameType::kError;
    p->encoded = true;
    encode_overloaded(p->resp_body,
                      static_cast<std::uint32_t>(
                          std::max(0, opt.retry_after_ms)),
                      "overloaded: in-flight budget exhausted, retry later");
    // Release: pairs with snapshot_stats' acquire so shed ≤ frames_in.
    shed.fetch_add(1, std::memory_order_release);
    return p;
  }

  /// True when accepting `nq` more route queries would exceed a
  /// configured admission bound (or the net.overload failpoint forces a
  /// rejection). Loop-local pending is read on the loop thread only.
  bool over_budget(const Loop& l, std::int64_t nq) {
    if (util::failpoint("net.overload") == util::FpAction::kError) {
      return true;
    }
    if (opt.max_inflight_queries > 0 &&
        inflight_queries.load(std::memory_order_relaxed) + nq >
            opt.max_inflight_queries) {
      return true;
    }
    return opt.max_pending_per_loop > 0 &&
           l.pending >= static_cast<std::int64_t>(opt.max_pending_per_loop);
  }

  void dispatch(Loop& l, const std::shared_ptr<Conn>& c, Frame&& f) {
    frames_in.fetch_add(1, std::memory_order_relaxed);
    auto p = std::make_shared<Pending>();
    p->request_id = f.request_id;
    // Frames a request queues *behind* its own response (the subscribe
    // catch-up snapshot) — enqueued after p, in order.
    std::vector<std::shared_ptr<Pending>> extras;
    switch (f.type) {
      case FrameType::kHello: {
        const auto g = current_gen();
        ServerInfo info;
        info.n = g->fs->n();
        info.k = g->fs->k();
        info.image_version = g->fs->format_version();
        info.num_trees = g->fs->num_trees();
        info.window = static_cast<std::uint32_t>(opt.window);
        p->resp_type = FrameType::kHelloAck;
        encode_hello_ack(p->resp_body, info);
        p->encoded = true;
        break;
      }
      case FrameType::kStats: {
        p->resp_type = FrameType::kStatsAck;
        encode_stats_ack(p->resp_body, snapshot_stats());
        p->encoded = true;
        break;
      }
      case FrameType::kLabel: {
        try {
          const graph::Vertex v = decode_label_request(f.body);
          const auto g = current_gen();
          if (v < 0 || v >= g->fs->n()) {
            p = make_error(f.request_id, ErrorCode::kBadQuery,
                           "label vertex out of range");
            break;
          }
          p->resp_type = FrameType::kLabelAck;
          encode_label_response(p->resp_body, g->fs->label_blob(v));
          p->encoded = true;
        } catch (const std::logic_error&) {
          p = make_error(f.request_id, ErrorCode::kBadBody,
                         "malformed label request");
        }
        break;
      }
      case FrameType::kRoute: {
        try {
          p->queries = decode_route_request(f.body);
        } catch (const std::logic_error&) {
          p = make_error(f.request_id, ErrorCode::kBadBody,
                         "malformed route request");
          break;
        }
        const auto g = current_gen();
        for (const auto& q : p->queries) {
          if (q.u < 0 || q.u >= g->fs->n() || q.v < 0 ||
              q.v >= g->fs->n()) {
            p = make_error(f.request_id, ErrorCode::kBadQuery,
                           "route vertex out of range");
            break;
          }
        }
        if (p->resp_type == FrameType::kError && p->encoded) break;
        const auto nq = static_cast<std::int64_t>(p->queries.size());
        if (over_budget(l, nq)) {
          p = make_overloaded(f.request_id);
          break;
        }
        p->is_route = true;
        p->resp_type = FrameType::kRouteAck;
        p->gen = g;
        p->conn = c;
        p->t0 = clock_t_::now();
        p->charged = nq;
        inflight_queries.fetch_add(nq, std::memory_order_relaxed);
        p->decisions.resize(p->queries.size());
        break;
      }
      case FrameType::kUpdate: {
        // Admin frame: apply the edge batch and publish it as a new delta
        // generation. Answered inline (the apply is a hash-table build,
        // not a route computation) and in pipeline order like everything
        // else; route frames already admitted keep their old generation.
        std::vector<serve::EdgeUpdate> ups;
        try {
          ups = decode_update_request(f.body);
        } catch (const std::logic_error&) {
          p = make_error(f.request_id, ErrorCode::kBadBody,
                         "malformed update request");
          break;
        }
        if (!opt.replica_of.empty()) {
          p = make_error(f.request_id, ErrorCode::kReadOnly,
                         "read-only replica: send updates to the primary");
          break;
        }
        const auto g = current_gen();
        for (const auto& e : ups) {
          if (e.u < 0 || e.u >= g->fs->n() || e.v < 0 ||
              e.v >= g->fs->n()) {
            p = make_error(f.request_id, ErrorCode::kBadQuery,
                           "update vertex out of range");
            break;
          }
        }
        if (p->resp_type == FrameType::kError && p->encoded) break;
        if (draining.load(std::memory_order_acquire)) {
          p = make_error(f.request_id, ErrorCode::kDraining,
                         "draining: updates not accepted");
          break;
        }
        try {
          const UpdateAck a = apply_updates(ups);
          p->resp_type = FrameType::kUpdateAck;
          encode_update_ack(p->resp_body, a);
          p->encoded = true;
        } catch (const serve::WalError& e) {
          // The log rejected the batch (disk full, injected fault):
          // nothing was published, reads keep serving the old generation.
          // Recoverable, and counted in wal_errors (apply_batch), not
          // protocol_errors — the request was well-formed.
          p->resp_type = FrameType::kError;
          p->resp_body.clear();
          encode_error(p->resp_body, ErrorCode::kWalError, e.what());
          p->encoded = true;
        } catch (const std::exception& e) {
          p = make_error(f.request_id, ErrorCode::kServerError, e.what());
        }
        break;
      }
      case FrameType::kSubscribe: {
        std::uint64_t have = 0;
        try {
          have = decode_subscribe(f.body);
        } catch (const std::logic_error&) {
          p = make_error(f.request_id, ErrorCode::kBadBody,
                         "malformed subscribe request");
          break;
        }
        if (!c->pipeline.empty()) {
          // The stream bypasses the ordered pipeline (pushed frames append
          // straight to the socket), so it must own its connection.
          p = make_error(f.request_id, ErrorCode::kBadQuery,
                         "subscribe requires a dedicated connection");
          break;
        }
        if (draining.load(std::memory_order_acquire)) {
          p = make_error(f.request_id, ErrorCode::kDraining,
                         "draining: subscriptions not accepted");
          break;
        }
        std::uint64_t head = 0;
        std::vector<serve::EdgeUpdate> snap;
        bool catch_up = false;
        {
          // Registration and the head snapshot are one atomic step
          // against apply_batch: every batch after `head` will be pushed,
          // and the catch-up snapshot covers everything up to it — no
          // gap, no double-apply (snapshots replace, not layer).
          std::lock_guard<std::mutex> lk(gen_m);
          head = update_seq;
          if (have < head) {
            catch_up = true;
            if (gen->delta != nullptr) {
              snap = gen->delta->as_edge_updates(*gen->fs);
            }
          }
          subscribers.push_back({c, l.inbox});
        }
        p->resp_type = FrameType::kSubscribeAck;
        encode_subscribe_ack(p->resp_body, head);
        p->encoded = true;
        if (catch_up) {
          // The snapshot rides the same ordered pipeline as the ack (the
          // pipeline was empty, so both flush before any pushed frame —
          // pushes enqueued from here on drain only on the *next* loop
          // iteration).
          for (auto& body : build_repl_bodies(head, head, true, snap)) {
            auto e = std::make_shared<Pending>();
            e->request_id = 0;
            e->resp_type = FrameType::kRepl;
            e->resp_body = std::move(body);
            e->encoded = true;
            extras.push_back(std::move(e));
          }
        }
        break;
      }
      case FrameType::kCheckpoint: {
        if (!f.body.empty()) {
          p = make_error(f.request_id, ErrorCode::kBadBody,
                         "checkpoint takes no body");
          break;
        }
        if (draining.load(std::memory_order_acquire)) {
          p = make_error(f.request_id, ErrorCode::kDraining,
                         "draining: checkpoint not accepted");
          break;
        }
        try {
          const CheckpointAck a = checkpoint();
          p->resp_type = FrameType::kCheckpointAck;
          encode_checkpoint_ack(p->resp_body, a);
          p->encoded = true;
        } catch (const std::exception& e) {
          p = make_error(f.request_id, ErrorCode::kServerError, e.what());
        }
        break;
      }
      default:
        // A checksummed frame of a response-only type from a client.
        p = make_error(f.request_id, ErrorCode::kBadType,
                       "not a request frame type");
        break;
    }

    enqueue(l, c, p);
    for (auto& e : extras) enqueue(l, c, std::move(e));
    if (p->is_route) {
      // Submit after queueing so the completion (delivered back to this
      // loop through the inbox) always finds the pending in order. The
      // callback MOVES its Pending reference out — a shard worker must
      // never end up holding the last reference to a generation (its
      // destructor would self-join; see all_gens).
      auto inbox = l.inbox;
      p->batch = p->gen->srv->submit(
          p->queries.data(), p->queries.size(), p->decisions.data(),
          p->gen->delta, [this, p, inbox]() mutable {
            // The shards are done with this batch: release its budget
            // charge whether or not the connection is still there.
            inflight_queries.fetch_sub(p->charged,
                                       std::memory_order_relaxed);
            auto mine = std::move(p);
            {
              std::lock_guard<std::mutex> lk(inbox->m);
              if (inbox->open) {
                inbox->done.push_back(std::move(mine));
                inbox->wake();
                return;
              }
            }
            std::lock_guard<std::mutex> lk(grave_m);
            grave.push_back(std::move(mine));
          });
    }
  }

  /// Encodes and flushes every answerable response at the head of the
  /// pipeline — strictly in request order — then pushes bytes to the
  /// socket.
  void flush_pipeline(Loop& l, const std::shared_ptr<Conn>& c) {
    while (!c->pipeline.empty()) {
      const auto& p = c->pipeline.front();
      if (p->is_route && !p->encoded) {
        if (!p->batch.done()) break;
        try {
          p->batch.wait();  // already done: only rethrows worker errors
          encode_route_response(p->resp_body, p->decisions.data(),
                                p->decisions.size());
          // Release: pairs with snapshot_stats' acquire so queries ≤
          // frames_in · kMaxQueriesPerFrame (the frame's frames_in
          // increment happened-before this).
          queries.fetch_add(
              static_cast<std::int64_t>(p->decisions.size()),
              std::memory_order_release);
        } catch (const std::exception& e) {
          p->resp_type = FrameType::kError;
          p->resp_body.clear();
          encode_error(p->resp_body, ErrorCode::kServerError, e.what());
          p->close_after = true;
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
        }
        p->encoded = true;
        l.latency.record_ns(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock_t_::now() - p->t0)
                .count());
      }
      if (!p->encoded) break;
      append_frame(c->out, p->resp_type, p->request_id, p->resp_body);
      // Release: pairs with snapshot_stats' acquire (frames_out ≤
      // frames_in).
      frames_out.fetch_add(1, std::memory_order_release);
      if (p->close_after) c->closing = true;
      c->pipeline.pop_front();
      --l.pending;
      if (c->closing) break;
    }
    handle_write(l, c);
  }

  void handle_write(Loop& l, const std::shared_ptr<Conn>& c) {
    if (c->fd < 0) return;
    const auto fp = util::failpoint("net.write");
    if (fp == util::FpAction::kError) {
      close_conn(l, c);  // injected write failure
      return;
    }
    bool progressed = false;
    while (c->out_off < c->out.size()) {
      std::size_t len = c->out.size() - c->out_off;
      if (fp == util::FpAction::kPartial) len = 1;
      const auto wr = ::send(c->fd, c->out.data() + c->out_off, len,
                             MSG_NOSIGNAL);
      if (wr > 0) {
        c->out_off += static_cast<std::size_t>(wr);
        progressed = true;
        if (fp == util::FpAction::kPartial) break;  // one byte, re-poll
        continue;
      }
      if (wr < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (wr < 0 && errno == EINTR) continue;
      close_conn(l, c);  // peer vanished mid-write
      return;
    }
    if (c->out_off == c->out.size()) {
      c->out.clear();
      c->out_off = 0;
      c->stall_armed = false;
      if (c->closing && c->pipeline.empty()) {
        close_conn(l, c);
        return;
      }
    } else if (opt.stall_timeout_ms > 0 &&
               (progressed || !c->stall_armed)) {
      // Unflushed bytes remain: (re)start the stall clock from the last
      // moment the peer made progress.
      c->stall_armed = true;
      c->stall_since = clock_t_::now();
    }
    update_interest(l, c);
  }

  /// Parses buffered input into dispatched frames — but never past the
  /// in-flight window, so max_inflight is a real bound, not just a read
  /// throttle. Leftover bytes wait in `in` until responses free room.
  void parse_available(Loop& l, const std::shared_ptr<Conn>& c) {
    std::size_t off = 0;
    while (!c->stop_parse && !c->closing &&
           !draining.load(std::memory_order_relaxed) &&
           c->pipeline.size() < static_cast<std::size_t>(opt.window)) {
      const auto pr = parse_frame(c->in.data() + off, c->in.size() - off);
      if (pr.status == ParseResult::Status::kNeedMore) break;
      if (pr.status == ParseResult::Status::kBad) {
        enqueue(l, c,
                make_error(pr.request_id, pr.error,
                           is_fatal(pr.error)
                               ? "broken frame envelope; closing"
                               : "unknown frame type"));
        if (is_fatal(pr.error)) {
          // The stream can't be resynced: answer, then close.
          c->stop_parse = true;
          break;
        }
        off += pr.consumed;  // checksummed frame of unknown type: skip it
        continue;
      }
      off += pr.consumed;
      Frame f = std::move(const_cast<ParseResult&>(pr).frame);
      dispatch(l, c, std::move(f));
    }
    if (off > 0) {
      c->in.erase(c->in.begin(),
                  c->in.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }

  /// Parse → flush, repeated while flushing frees window room for more
  /// buffered frames. Called on new input and on batch completion.
  void pump(Loop& l, const std::shared_ptr<Conn>& c) {
    for (;;) {
      parse_available(l, c);
      const std::size_t before = c->pipeline.size();
      flush_pipeline(l, c);
      if (c->fd < 0 || c->in.empty() || c->pipeline.size() == before) {
        break;
      }
    }
  }

  void handle_read(Loop& l, const std::shared_ptr<Conn>& c) {
    const auto fp = util::failpoint("net.read");
    if (fp == util::FpAction::kError) {
      close_conn(l, c);  // injected read failure
      return;
    }
    std::uint8_t buf[65536];
    // Partial-io: read one byte per event-loop pass — no data is lost,
    // the stream just arrives maximally fragmented (level-triggered
    // interest re-fires until the socket drains).
    const std::size_t cap =
        fp == util::FpAction::kPartial ? 1 : sizeof(buf);
    const auto rd = ::recv(c->fd, buf, cap, 0);
    if (rd == 0) {
      // Abrupt peer close — possibly mid-batch. Drop the socket; any
      // in-flight batches finish into their own Pending buffers.
      close_conn(l, c);
      return;
    }
    if (rd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      close_conn(l, c);
      return;
    }
    c->in.insert(c->in.end(), buf, buf + rd);
    pump(l, c);
  }

  /// Force-closes connections that broke a time bound (§12): a
  /// head-of-line route response still not computed past the request
  /// deadline (nothing behind it could be answered anyway — responses
  /// are strictly ordered), or a write-stalled peer past the stall
  /// timeout. Runs on the loop thread between epoll waits.
  void check_timers(Loop& l) {
    if (opt.request_deadline_ms <= 0 && opt.stall_timeout_ms <= 0) return;
    const auto now = clock_t_::now();
    std::vector<std::shared_ptr<Conn>> victims;
    for (auto& [fd, c] : l.conns) {
      if (opt.request_deadline_ms > 0 && !c->pipeline.empty()) {
        const auto& p = c->pipeline.front();
        if (p->is_route && !p->encoded &&
            now - p->t0 >
                std::chrono::milliseconds(opt.request_deadline_ms)) {
          timeouts.fetch_add(1, std::memory_order_relaxed);
          victims.push_back(c);
          continue;
        }
      }
      if (opt.stall_timeout_ms > 0 && c->stall_armed &&
          now - c->stall_since >
              std::chrono::milliseconds(opt.stall_timeout_ms)) {
        stalls.fetch_add(1, std::memory_order_relaxed);
        victims.push_back(c);
      }
    }
    for (auto& c : victims) close_conn(l, c);
  }

  void run_loop(Loop& l) {
    l.ep = ::epoll_create1(EPOLL_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = l.inbox->wakefd;
    ::epoll_ctl(l.ep, EPOLL_CTL_ADD, l.inbox->wakefd, &ev);

    bool drain_seen = false;
    clock_t_::time_point deadline{};
    epoll_event events[64];
    for (;;) {
      const bool dr = draining.load(std::memory_order_acquire);
      if (dr && !drain_seen) {
        drain_seen = true;
        deadline = clock_t_::now() +
                   std::chrono::milliseconds(opt.drain_timeout_ms);
        // Stop reading everywhere; finish what's parsed, flush, close.
        for (auto& [fd, c] : l.conns) update_interest(l, c);
      }
      if (drain_seen) {
        // Close connections with nothing left to answer or flush.
        std::vector<std::shared_ptr<Conn>> done;
        for (auto& [fd, c] : l.conns) {
          if ((c->pipeline.empty() && c->out_off == c->out.size()) ||
              clock_t_::now() >= deadline) {
            done.push_back(c);
          }
        }
        for (auto& c : done) close_conn(l, c);
        if (l.conns.empty()) break;
      }

      // Timers demand periodic wakeups; otherwise block indefinitely.
      const bool timers =
          (opt.request_deadline_ms > 0 || opt.stall_timeout_ms > 0) &&
          !l.conns.empty();
      const int nev = ::epoll_wait(l.ep, events, 64,
                                   (drain_seen || timers) ? 50 : -1);
      if (nev < 0 && errno == EINTR) continue;

      // Mailbox first: adopt new sockets, finish completed batches.
      std::vector<int> fds;
      std::vector<std::shared_ptr<Pending>> done;
      std::vector<std::pair<std::weak_ptr<Conn>, std::vector<std::uint8_t>>>
          pushes;
      {
        std::lock_guard<std::mutex> lk(l.inbox->m);
        fds.swap(l.inbox->fds);
        done.swap(l.inbox->done);
        pushes.swap(l.inbox->push);
      }
      std::uint64_t tick = 0;
      [[maybe_unused]] const auto r =
          ::read(l.inbox->wakefd, &tick, sizeof(tick));
      for (const int fd : fds) {
        if (draining.load(std::memory_order_relaxed)) {
          ::close(fd);
          continue;
        }
        auto c = std::make_shared<Conn>();
        c->fd = fd;
        c->events = EPOLLIN;
        epoll_event cev{};
        cev.events = EPOLLIN;
        cev.data.fd = fd;
        ::epoll_ctl(l.ep, EPOLL_CTL_ADD, fd, &cev);
        l.conns.emplace(fd, std::move(c));
        // Release: the acceptor's conns_accepted increment happened-before
        // this (inbox mutex handoff), so snapshot_stats' acquire read of
        // `active` keeps conns_active ≤ conns_accepted.
        l.active.fetch_add(1, std::memory_order_release);
      }
      for (const auto& p : done) {
        if (const auto c = p->conn.lock(); c && c->fd >= 0) {
          pump(l, c);
        }
      }
      for (auto& [wc, bytes] : pushes) {
        const auto c = wc.lock();
        if (!c || c->fd < 0) continue;
        // Server-initiated kRepl bytes, appended behind whatever the
        // ordered pipeline already flushed. Not counted in frames_out
        // (which tracks responses, bounded by frames_in). A subscriber
        // that stopped reading is cut once its queue passes 4× the
        // outbuf cap — it reconnects and catches up by snapshot.
        if (c->out.size() - c->out_off > opt.outbuf_limit * 4) {
          close_conn(l, c);
          continue;
        }
        c->out.insert(c->out.end(), bytes.begin(), bytes.end());
        handle_write(l, c);
      }

      for (int i = 0; i < nev; ++i) {
        const int fd = events[i].data.fd;
        if (fd == l.inbox->wakefd) continue;
        const auto it = l.conns.find(fd);
        if (it == l.conns.end()) continue;
        auto c = it->second;  // keep alive across close_conn
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(l, c);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) handle_write(l, c);
        if (c->fd >= 0 && (events[i].events & EPOLLIN) != 0) {
          handle_read(l, c);
        }
      }

      check_timers(l);
    }

    for (auto it = l.conns.begin(); it != l.conns.end();) {
      auto c = (it++)->second;
      close_conn(l, c);
    }
    {
      std::lock_guard<std::mutex> lk(l.inbox->m);
      l.inbox->open = false;
      for (const int fd : l.inbox->fds) ::close(fd);
      l.inbox->fds.clear();
      l.inbox->done.clear();
      l.inbox->push.clear();
    }
    ::close(l.ep);
  }
};

Server::Server(serve::FrozenScheme fs, NetServerOptions opt)
    : impl_(std::make_unique<Impl>(std::move(fs), std::move(opt))) {}

Server::~Server() = default;

int Server::port() const { return impl_->bound_port; }

void Server::drain() { impl_->drain(); }

void Server::reload(serve::FrozenScheme fs) { impl_->reload(std::move(fs)); }

UpdateAck Server::apply_updates(std::span<const serve::EdgeUpdate> updates) {
  return impl_->apply_updates(updates);
}

CheckpointAck Server::checkpoint() { return impl_->checkpoint(); }

WireStats Server::stats() const { return impl_->snapshot_stats(); }

const NetServerOptions& Server::options() const { return impl_->opt; }

}  // namespace nors::net
