#include "net/wire.h"

#include "core/serialize.h"
#include "util/check.h"

namespace nors::net {

namespace {

// Little-endian fixed-width header accessors. memcpy keeps the reads
// alignment-safe; the repo targets little-endian hosts (the frozen-image
// loader rejects big-endian images the same way).
template <typename T>
T read_le(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void write_le(std::uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

bool known_request_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
    case FrameType::kRoute:
    case FrameType::kRouteAck:
    case FrameType::kLabel:
    case FrameType::kLabelAck:
    case FrameType::kStats:
    case FrameType::kStatsAck:
    case FrameType::kUpdate:
    case FrameType::kUpdateAck:
    case FrameType::kSubscribe:
    case FrameType::kSubscribeAck:
    case FrameType::kRepl:
    case FrameType::kCheckpoint:
    case FrameType::kCheckpointAck:
    case FrameType::kError:
      return true;
    default:
      return false;
  }
}

/// Body decode cursor with the exact-consumption discipline of the frozen
/// v3 sections: every getter throws via core::get_uvarint's guards, and
/// finish() rejects trailing bytes, so a body either decodes completely
/// and canonically or not at all.
class BodyReader {
 public:
  explicit BodyReader(std::span<const std::uint8_t> body)
      : p_(body.data()), end_(body.data() + body.size()) {}

  std::uint64_t u64() {
    std::uint64_t x = 0;
    p_ = core::get_uvarint(p_, end_, x);
    return x;
  }

  std::int64_t i64() { return core::unzigzag(u64()); }

  std::int32_t i32() {
    const std::int64_t x = i64();
    NORS_CHECK_MSG(x >= INT32_MIN && x <= INT32_MAX,
                   "wire field out of int32 range");
    return static_cast<std::int32_t>(x);
  }

  std::span<const std::uint8_t> bytes(std::size_t len) {
    NORS_CHECK_MSG(static_cast<std::size_t>(end_ - p_) >= len,
                   "wire body truncated");
    const auto* at = p_;
    p_ += len;
    return {at, len};
  }

  void finish() const {
    NORS_CHECK_MSG(p_ == end_, "trailing bytes after wire body");
  }

  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace

ParseResult parse_frame(const std::uint8_t* data, std::size_t len) {
  ParseResult r;
  // Reject envelope fields as soon as their bytes arrive, so garbage is
  // caught without waiting for (or allocating) a "body" the length prefix
  // promises.
  if (len >= 4 && read_le<std::uint32_t>(data) != kMagic) {
    r.status = ParseResult::Status::kBad;
    r.error = ErrorCode::kBadMagic;
    return r;
  }
  if (len >= 5 && data[4] != kProtoVersion) {
    r.status = ParseResult::Status::kBad;
    r.error = ErrorCode::kBadVersion;
    return r;
  }
  if (len >= 8 && read_le<std::uint16_t>(data + 6) != 0) {
    r.status = ParseResult::Status::kBad;
    r.error = ErrorCode::kBadFlags;
    return r;
  }
  if (len < kHeaderBytes) return r;  // kNeedMore

  r.request_id = read_le<std::uint32_t>(data + 8);
  const std::uint32_t body_len = read_le<std::uint32_t>(data + 12);
  if (body_len > kMaxBody) {
    r.status = ParseResult::Status::kBad;
    r.error = ErrorCode::kBadLength;
    return r;
  }
  const std::size_t total = kHeaderBytes + body_len + kChecksumBytes;
  if (len < total) return r;  // kNeedMore

  const std::uint64_t want =
      read_le<std::uint64_t>(data + kHeaderBytes + body_len);
  if (fnv1a(data, kHeaderBytes + body_len) != want) {
    r.status = ParseResult::Status::kBad;
    r.error = ErrorCode::kBadChecksum;
    return r;
  }
  if (!known_request_type(data[5])) {
    // Checksummed, so it's a well-formed frame of an unknown type: a
    // recoverable error (the stream stays in sync).
    r.status = ParseResult::Status::kBad;
    r.error = ErrorCode::kBadType;
    r.consumed = total;
    return r;
  }

  r.status = ParseResult::Status::kFrame;
  r.consumed = total;
  r.frame.type = static_cast<FrameType>(data[5]);
  r.frame.request_id = r.request_id;
  r.frame.body.assign(data + kHeaderBytes, data + kHeaderBytes + body_len);
  return r;
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t request_id,
                  std::span<const std::uint8_t> body) {
  NORS_CHECK_MSG(body.size() <= kMaxBody, "frame body exceeds kMaxBody");
  const std::size_t at = out.size();
  out.resize(at + kHeaderBytes + body.size() + kChecksumBytes);
  std::uint8_t* p = out.data() + at;
  write_le<std::uint32_t>(p, kMagic);
  p[4] = kProtoVersion;
  p[5] = static_cast<std::uint8_t>(type);
  write_le<std::uint16_t>(p + 6, 0);
  write_le<std::uint32_t>(p + 8, request_id);
  write_le<std::uint32_t>(p + 12, static_cast<std::uint32_t>(body.size()));
  if (!body.empty()) {
    std::memcpy(p + kHeaderBytes, body.data(), body.size());
  }
  write_le<std::uint64_t>(p + kHeaderBytes + body.size(),
                          fnv1a(p, kHeaderBytes + body.size()));
}

void encode_route_request(std::vector<std::uint8_t>& body,
                          const serve::Query* queries, std::size_t count) {
  NORS_CHECK_MSG(count <= kMaxQueriesPerFrame,
                 "route frame too large: split the batch");
  core::put_uvarint(body, count);
  for (std::size_t i = 0; i < count; ++i) {
    core::put_uvarint(body, core::zigzag(queries[i].u));
    core::put_uvarint(body, core::zigzag(queries[i].v));
  }
}

std::vector<serve::Query> decode_route_request(
    std::span<const std::uint8_t> body) {
  BodyReader r(body);
  const std::uint64_t count = r.u64();
  NORS_CHECK_MSG(count <= kMaxQueriesPerFrame,
                 "route frame count exceeds the per-frame cap");
  std::vector<serve::Query> qs(static_cast<std::size_t>(count));
  for (auto& q : qs) {
    q.u = r.i32();
    q.v = r.i32();
  }
  r.finish();
  return qs;
}

void encode_route_response(std::vector<std::uint8_t>& body,
                           const serve::Decision* decisions,
                           std::size_t count) {
  core::put_uvarint(body, count);
  for (std::size_t i = 0; i < count; ++i) {
    const serve::Decision& d = decisions[i];
    const std::uint64_t flags = (d.ok ? 1u : 0u) | (d.via_trick ? 2u : 0u);
    core::put_uvarint(body, flags);
    core::put_uvarint(body, core::zigzag(d.hops));
    core::put_uvarint(body, core::zigzag(d.tree_level));
    core::put_uvarint(body, core::zigzag(d.tree_root));
    core::put_uvarint(body, core::zigzag(d.length));
  }
}

std::vector<serve::Decision> decode_route_response(
    std::span<const std::uint8_t> body) {
  BodyReader r(body);
  const std::uint64_t count = r.u64();
  NORS_CHECK_MSG(count <= kMaxQueriesPerFrame, "response count over cap");
  std::vector<serve::Decision> ds(static_cast<std::size_t>(count));
  for (auto& d : ds) {
    const std::uint64_t flags = r.u64();
    NORS_CHECK_MSG(flags <= 3, "unknown decision flags");
    d.ok = (flags & 1) != 0;
    d.via_trick = (flags & 2) != 0;
    d.hops = r.i32();
    d.tree_level = r.i32();
    d.tree_root = r.i32();
    d.length = r.i64();
  }
  r.finish();
  return ds;
}

void encode_hello_ack(std::vector<std::uint8_t>& body, const ServerInfo& i) {
  core::put_uvarint(body, i.proto_version);
  core::put_uvarint(body, core::zigzag(i.n));
  core::put_uvarint(body, core::zigzag(i.k));
  core::put_uvarint(body, i.image_version);
  core::put_uvarint(body, core::zigzag(i.num_trees));
  core::put_uvarint(body, i.window);
}

ServerInfo decode_hello_ack(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  ServerInfo i;
  i.proto_version = static_cast<std::uint32_t>(r.u64());
  i.n = r.i32();
  i.k = r.i32();
  i.image_version = static_cast<std::uint32_t>(r.u64());
  i.num_trees = r.i32();
  i.window = static_cast<std::uint32_t>(r.u64());
  r.finish();
  return i;
}

void encode_label_request(std::vector<std::uint8_t>& body, graph::Vertex v) {
  core::put_uvarint(body, core::zigzag(v));
}

graph::Vertex decode_label_request(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  const graph::Vertex v = r.i32();
  r.finish();
  return v;
}

void encode_label_response(std::vector<std::uint8_t>& body,
                           std::span<const std::uint8_t> label) {
  core::put_uvarint(body, label.size());
  body.insert(body.end(), label.begin(), label.end());
}

std::vector<std::uint8_t> decode_label_response(
    std::span<const std::uint8_t> body) {
  BodyReader r(body);
  const std::uint64_t len = r.u64();
  NORS_CHECK_MSG(len <= kMaxBody, "label length over body cap");
  const auto bytes = r.bytes(static_cast<std::size_t>(len));
  r.finish();
  return {bytes.begin(), bytes.end()};
}

void encode_stats_ack(std::vector<std::uint8_t>& body, const WireStats& s) {
  for (const std::int64_t v :
       {s.conns_accepted, s.conns_active, s.frames_in, s.frames_out,
        s.queries, s.protocol_errors, s.reloads, s.max_inflight, s.p50_ns,
        s.p99_ns, s.shed, s.timeouts, s.stalls, s.updates, s.masked,
        s.repaired, s.update_seq, s.wal_records, s.wal_errors,
        s.checkpoints, s.repl_applied, s.repl_lag, s.subscribers}) {
    core::put_uvarint(body, core::zigzag(v));
  }
}

WireStats decode_stats_ack(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  WireStats s;
  for (std::int64_t* v :
       {&s.conns_accepted, &s.conns_active, &s.frames_in, &s.frames_out,
        &s.queries, &s.protocol_errors, &s.reloads, &s.max_inflight,
        &s.p50_ns, &s.p99_ns, &s.shed, &s.timeouts, &s.stalls, &s.updates,
        &s.masked, &s.repaired, &s.update_seq, &s.wal_records,
        &s.wal_errors, &s.checkpoints, &s.repl_applied, &s.repl_lag,
        &s.subscribers}) {
    *v = r.i64();
  }
  r.finish();
  return s;
}

void encode_update_request(std::vector<std::uint8_t>& body,
                           std::span<const serve::EdgeUpdate> updates) {
  NORS_CHECK_MSG(updates.size() <= kMaxUpdatesPerFrame,
                 "update frame too large: split the batch");
  // The batch bytes are the shared serve:: codec, so a WAL record body
  // and a kUpdate body are interchangeable (DESIGN.md §14).
  serve::encode_edge_updates(body, updates);
}

std::vector<serve::EdgeUpdate> decode_update_request(
    std::span<const std::uint8_t> body) {
  std::vector<serve::EdgeUpdate> us;
  const std::uint8_t* p = serve::decode_edge_updates(
      body.data(), body.data() + body.size(), us, kMaxUpdatesPerFrame);
  NORS_CHECK_MSG(p == body.data() + body.size(),
                 "trailing bytes after wire body");
  return us;
}

void encode_update_ack(std::vector<std::uint8_t>& body, const UpdateAck& a) {
  core::put_uvarint(body, a.seq);
  for (const std::int64_t v : {a.applied, a.unknown_edges, a.overrides,
                               a.failed_links, a.masked_trees}) {
    core::put_uvarint(body, core::zigzag(v));
  }
}

UpdateAck decode_update_ack(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  UpdateAck a;
  a.seq = r.u64();
  for (std::int64_t* v : {&a.applied, &a.unknown_edges, &a.overrides,
                          &a.failed_links, &a.masked_trees}) {
    *v = r.i64();
  }
  r.finish();
  return a;
}

void encode_repl(std::vector<std::uint8_t>& body, const ReplFrame& f) {
  NORS_CHECK_MSG(f.events.size() <= kMaxUpdatesPerFrame,
                 "repl frame too large: chunk the batch");
  core::put_uvarint(body, f.seq);
  core::put_uvarint(body, f.head_seq);
  core::put_uvarint(body,
                    (f.snapshot ? 1u : 0u) | (f.more ? 2u : 0u));
  serve::encode_edge_updates(body, f.events);
}

ReplFrame decode_repl(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  ReplFrame f;
  f.seq = r.u64();
  f.head_seq = r.u64();
  const std::uint64_t flags = r.u64();
  NORS_CHECK_MSG(flags <= 3, "unknown repl flags");
  f.snapshot = (flags & 1) != 0;
  f.more = (flags & 2) != 0;
  NORS_CHECK_MSG(f.seq <= f.head_seq, "repl seq ahead of head");
  const std::size_t consumed =
      static_cast<std::size_t>(body.size()) -
      static_cast<std::size_t>(r.remaining());
  const std::uint8_t* p = serve::decode_edge_updates(
      body.data() + consumed, body.data() + body.size(), f.events,
      kMaxUpdatesPerFrame);
  NORS_CHECK_MSG(p == body.data() + body.size(),
                 "trailing bytes after wire body");
  return f;
}

void encode_subscribe(std::vector<std::uint8_t>& body,
                      std::uint64_t have_seq) {
  core::put_uvarint(body, have_seq);
}

std::uint64_t decode_subscribe(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  const std::uint64_t have = r.u64();
  r.finish();
  return have;
}

void encode_subscribe_ack(std::vector<std::uint8_t>& body,
                          std::uint64_t head_seq) {
  core::put_uvarint(body, head_seq);
}

std::uint64_t decode_subscribe_ack(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  const std::uint64_t head = r.u64();
  r.finish();
  return head;
}

void encode_checkpoint_ack(std::vector<std::uint8_t>& body,
                           const CheckpointAck& a) {
  core::put_uvarint(body, a.seq);
  for (const std::int64_t v : {a.squashed, a.image_rebuilt, a.wal_segments}) {
    core::put_uvarint(body, core::zigzag(v));
  }
}

CheckpointAck decode_checkpoint_ack(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  CheckpointAck a;
  a.seq = r.u64();
  for (std::int64_t* v : {&a.squashed, &a.image_rebuilt, &a.wal_segments}) {
    *v = r.i64();
  }
  r.finish();
  return a;
}

void encode_error(std::vector<std::uint8_t>& body, ErrorCode code,
                  const std::string& message) {
  NORS_CHECK_MSG(code != ErrorCode::kOverloaded,
                 "kOverloaded frames carry a hint: use encode_overloaded");
  core::put_uvarint(body, static_cast<std::uint64_t>(code));
  core::put_uvarint(body, message.size());
  body.insert(body.end(), message.begin(), message.end());
}

void encode_overloaded(std::vector<std::uint8_t>& body,
                       std::uint32_t retry_after_ms,
                       const std::string& message) {
  core::put_uvarint(body,
                    static_cast<std::uint64_t>(ErrorCode::kOverloaded));
  core::put_uvarint(body, retry_after_ms);
  core::put_uvarint(body, message.size());
  body.insert(body.end(), message.begin(), message.end());
}

WireError decode_error(std::span<const std::uint8_t> body) {
  BodyReader r(body);
  WireError e;
  const std::uint64_t code = r.u64();
  NORS_CHECK_MSG(code <= 0xff, "error code out of range");
  e.code = static_cast<ErrorCode>(code);
  if (e.code == ErrorCode::kOverloaded) {
    const std::uint64_t hint = r.u64();
    NORS_CHECK_MSG(hint <= 0xffffffffull, "retry-after hint out of range");
    e.retry_after_ms = static_cast<std::uint32_t>(hint);
  }
  const std::uint64_t len = r.u64();
  NORS_CHECK_MSG(len <= kMaxBody, "error message over body cap");
  const auto bytes = r.bytes(static_cast<std::size_t>(len));
  e.message.assign(bytes.begin(), bytes.end());
  r.finish();
  return e;
}

}  // namespace nors::net
